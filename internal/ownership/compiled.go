package ownership

import (
	"fmt"
	"sort"

	"dtc/internal/packet"
)

// stride is the number of address bits consumed per compiled-trie level.
// A stride of 4 turns the worst-case 32 pointer dereferences of the binary
// trie into at most 8 indexed loads from one contiguous slice.
const stride = 4

const fanout = 1 << stride

// cslot is one stride entry of a compiled node: the index of the child
// node one level down and the value index of the longest stored prefix
// that ends inside this node and covers the entry (leaf-pushed within the
// node). Both are -1 when absent.
type cslot struct {
	child int32
	val   int32
}

// clocal records one stored prefix rooted in a node, kept so Covering can
// report every match, not just the longest one the slot table retains.
type clocal struct {
	plen uint8 // full prefix length in bits
	key  uint8 // the plen-depth in-node bits of the prefix
	val  int32
}

// cnode is one level of the flattened trie. Nodes live in a single slice
// and reference each other by index, so a lookup chases no pointers.
type cnode struct {
	slots  [fanout]cslot
	locals []clocal // prefixes rooted here, sorted shortest first
}

// Compiled is an immutable, flattened longest-prefix-match form of a Trie,
// built by Trie.Compiled. Lookups allocate nothing and touch at most
// 32/stride nodes. It is safe for concurrent readers.
type Compiled[V any] struct {
	nodes    []cnode
	vals     []V
	prefixes []packet.Prefix // parallel to vals
	def      int32           // value index of the zero-length prefix, -1 if none
	n        int
	// cover is a 256-bit first-octet bitmap: bit o is set iff some stored
	// prefix can contain an address whose first octet is o. MayMatch tests
	// it to reject the (dominant) no-match case in one load.
	cover [4]uint64
}

func emptyNode() cnode {
	var n cnode
	for i := range n.slots {
		n.slots[i] = cslot{child: -1, val: -1}
	}
	return n
}

// compile flattens the pointer trie. Walk hands prefixes parent-first, but
// slot filling compares prefix lengths explicitly so order does not matter.
func (t *Trie[V]) compile() *Compiled[V] {
	c := &Compiled[V]{def: -1, n: t.n}
	c.nodes = append(c.nodes, emptyNode())
	// plens mirrors nodes: the prefix length currently winning each slot,
	// 0 = none. Build scaffolding only; discarded when compile returns.
	plens := make([][fanout]uint8, 1)
	t.Walk(func(p packet.Prefix, v V) bool {
		vi := int32(len(c.vals))
		c.vals = append(c.vals, v)
		c.prefixes = append(c.prefixes, p)
		c.coverPrefix(p)
		if p.Bits == 0 {
			c.def = vi
			return true
		}
		// The prefix lives in the node covering bits [depth, depth+stride).
		depth := (int(p.Bits) - 1) / stride * stride
		ni := int32(0)
		for d := 0; d < depth; d += stride {
			e := int(uint32(p.Addr)>>(32-stride-d)) & (fanout - 1)
			if c.nodes[ni].slots[e].child < 0 {
				c.nodes = append(c.nodes, emptyNode())
				plens = append(plens, [fanout]uint8{})
				c.nodes[ni].slots[e].child = int32(len(c.nodes) - 1)
			}
			ni = c.nodes[ni].slots[e].child
		}
		k := int(p.Bits) - depth // 1..stride bits used inside the node
		key := int(uint32(p.Addr)>>(32-int(p.Bits))) & (1<<k - 1)
		for e := key << (stride - k); e < (key+1)<<(stride-k); e++ {
			if p.Bits > plens[ni][e] {
				plens[ni][e] = p.Bits
				c.nodes[ni].slots[e].val = vi
			}
		}
		c.nodes[ni].locals = append(c.nodes[ni].locals, clocal{plen: p.Bits, key: uint8(key), val: vi})
		return true
	})
	for i := range c.nodes {
		ls := c.nodes[i].locals
		sort.Slice(ls, func(a, b int) bool { return ls[a].plen < ls[b].plen })
	}
	return c
}

// coverPrefix marks every first octet reachable under prefix p.
func (c *Compiled[V]) coverPrefix(p packet.Prefix) {
	if p.Bits == 0 {
		for i := range c.cover {
			c.cover[i] = ^uint64(0)
		}
		return
	}
	first := uint32(p.Addr) >> 24
	last := first
	if p.Bits < 8 {
		first &^= 1<<(8-p.Bits) - 1 // drop any unmasked host bits
		last = first + 1<<(8-p.Bits) - 1
	}
	for o := first; o <= last; o++ {
		c.cover[o>>6] |= 1 << (o & 63)
	}
}

// Len returns the number of stored prefixes.
func (c *Compiled[V]) Len() int { return c.n }

// MayMatch reports whether some stored prefix could contain a. A false
// answer guarantees Lookup(a) misses; a true answer says nothing. It is the
// single-load fast-reject in front of the full longest-prefix walk.
func (c *Compiled[V]) MayMatch(a packet.Addr) bool {
	o := uint32(a) >> 24
	return c.cover[o>>6]&(1<<(o&63)) != 0
}

// Lookup returns the value of the longest prefix containing a.
func (c *Compiled[V]) Lookup(a packet.Addr) (V, bool) {
	best := c.def
	nodes := c.nodes
	ni := int32(0)
	for shift := uint(32 - stride); ; shift -= stride {
		sl := &nodes[ni].slots[(uint32(a)>>shift)&(fanout-1)]
		if sl.val >= 0 {
			best = sl.val
		}
		ni = sl.child
		if ni < 0 {
			break
		}
	}
	if best < 0 {
		var zero V
		return zero, false
	}
	return c.vals[best], true
}

// Covering returns all stored prefixes that contain address a, shortest
// first, matching Trie.Covering on the trie this was compiled from.
func (c *Compiled[V]) Covering(a packet.Addr) []packet.Prefix {
	var out []packet.Prefix
	if c.def >= 0 {
		out = append(out, packet.MakePrefix(0, 0))
	}
	ni := int32(0)
	for shift := uint(32 - stride); ; shift -= stride {
		nd := &c.nodes[ni]
		depth := 32 - stride - shift
		for _, lc := range nd.locals {
			// The path to this node already matches a; check the in-node bits.
			k := uint(lc.plen) - depth
			if uint8(uint32(a)>>(32-uint(lc.plen)))&(1<<k-1) == lc.key {
				out = append(out, packet.MakePrefix(a, lc.plen))
			}
		}
		ni = nd.slots[(uint32(a)>>shift)&(fanout-1)].child
		if ni < 0 {
			break
		}
	}
	return out
}

func (c *Compiled[V]) String() string {
	return fmt.Sprintf("compiled-trie(%d prefixes, %d nodes)", c.n, len(c.nodes))
}
