package attack

import (
	"fmt"

	"dtc/internal/netsim"
	"dtc/internal/packet"
	"dtc/internal/sim"
)

// Reflector is an innocent, uncompromised server that replies to requests —
// and thereby can be misused to bounce attack traffic at a spoofed victim
// (paper §2.2). Kind models which service it runs, which determines the
// reply it reflects.
type Reflector struct {
	Server *netsim.Server
	Kind   ReflectorKind

	// Reflected counts replies sent in response to attack packets; Replied
	// counts legitimate replies.
	Reflected uint64
	Replied   uint64
}

// ReflectorKind is the service a reflector host runs.
type ReflectorKind uint8

// Reflector services from the paper's list (web, DNS, FTP/Gnutella-style
// servers, routers answering with ICMP).
const (
	ReflectWeb  ReflectorKind = iota // TCP SYN -> SYN-ACK
	ReflectDNS                       // UDP query -> larger response
	ReflectICMP                      // any IP packet -> ICMP host unreachable
)

// String implements fmt.Stringer.
func (k ReflectorKind) String() string {
	switch k {
	case ReflectWeb:
		return "web"
	case ReflectDNS:
		return "dns"
	case ReflectICMP:
		return "icmp"
	default:
		return fmt.Sprintf("reflector(%d)", uint8(k))
	}
}

// DNSAmplification is the response/request size ratio of the DNS
// reflector, modelling the packet-size amplification the paper describes.
const DNSAmplification = 4

// NewReflector attaches a reflector server to node. Service time and queue
// depth describe the real service the host runs; reflection happens at the
// same capacity (the server is not compromised, merely answering).
func NewReflector(net *netsim.Network, node int, kind ReflectorKind, serviceTime sim.Time, queueCap int) (*Reflector, error) {
	srv, err := net.NewServer(node, serviceTime, queueCap)
	if err != nil {
		return nil, err
	}
	r := &Reflector{Server: srv, Kind: kind}
	srv.OnServe = r.reply
	return r, nil
}

// reply sends the service's response to the packet's claimed source.
// The reflector cannot know the source is spoofed — that is the whole
// attack. Replies to attack traffic are tagged KindReflect so experiments
// can attribute the backscatter, and keep the true Origin for traceback
// ground truth.
func (r *Reflector) reply(now sim.Time, req *packet.Packet) {
	kind := packet.KindLegit
	if req.Kind == packet.KindAttack {
		kind = packet.KindReflect
		r.Reflected++
	} else {
		r.Replied++
	}
	resp := &packet.Packet{
		Src: r.Server.Host.Addr, Dst: req.Src,
		SrcPort: req.DstPort, DstPort: req.SrcPort,
		Seq: req.Seq + 1, Kind: kind,
	}
	switch r.Kind {
	case ReflectWeb:
		resp.Proto = packet.TCP
		resp.Flags = packet.FlagSYN | packet.FlagACK
		resp.Size = packet.MinHeaderBytes + 12
	case ReflectDNS:
		resp.Proto = packet.UDP
		resp.Size = req.Size * DNSAmplification
	case ReflectICMP:
		resp.Proto = packet.ICMP
		resp.Flags = packet.ICMPUnreachable
		resp.ICMPCode = packet.ICMPHostUnreachSub
		resp.Size = packet.MinHeaderBytes + 8
	}
	r.Server.Host.Send(now, resp)
}

// NewReflectorFleet attaches one reflector per node.
func NewReflectorFleet(net *netsim.Network, nodes []int, kind ReflectorKind, serviceTime sim.Time, queueCap int) ([]*Reflector, error) {
	out := make([]*Reflector, 0, len(nodes))
	for _, n := range nodes {
		r, err := NewReflector(net, n, kind, serviceTime, queueCap)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ReflectorSpec returns the FloodSpec agents use to drive a reflector
// attack: requests to the reflectors' service with the victim's address as
// the spoofed source. Aim each agent at one reflector address.
func ReflectorSpec(victim packet.Addr, kind ReflectorKind, rate float64) FloodSpec {
	spec := FloodSpec{Rate: rate, Spoof: SpoofVictim, Victim: victim}
	switch kind {
	case ReflectWeb:
		spec.Proto = packet.TCP
		spec.Flags = packet.FlagSYN
		spec.DstPort = 80
		spec.Size = packet.MinHeaderBytes + 12
	case ReflectDNS:
		spec.Proto = packet.UDP
		spec.DstPort = 53
		spec.Size = packet.MinHeaderBytes + 32
	case ReflectICMP:
		spec.Proto = packet.ICMP
		spec.Flags = packet.ICMPEchoRequest
		spec.Size = packet.MinHeaderBytes + 8
	}
	return spec
}

// LaunchReflectorAttack points each agent at a reflector (round robin) and
// launches through the C&C tree at `at`: agents send service requests with
// the victim's spoofed source, and the reflectors' replies converge on the
// victim.
func (b *Botnet) LaunchReflectorAttack(at sim.Time, reflectors []*Reflector, kind ReflectorKind, victim packet.Addr, ratePerAgent float64, stop sim.Time) error {
	if len(reflectors) == 0 {
		return fmt.Errorf("attack: no reflectors")
	}
	base := ReflectorSpec(victim, kind, ratePerAgent)
	for i, a := range b.Agents {
		agent := a
		refl := reflectors[i%len(reflectors)]
		spec := base
		// The "victim" of the agent's flood is the reflector; the spoofed
		// source is the real victim.
		spec.Victim = refl.Server.Host.Addr
		agent.Recv = func(now sim.Time, pkt *packet.Packet) {
			if pkt.Kind != packet.KindControl {
				return
			}
			rng := b.net.Sim.RNG().Fork()
			mk := func(j uint64) *packet.Packet {
				return &packet.Packet{
					Src: victim, Dst: refl.Server.Host.Addr,
					Proto: spec.Proto, Flags: spec.Flags, DstPort: spec.DstPort,
					SrcPort: uint16(1024 + rng.Intn(60000)), Seq: uint32(j),
					Size: spec.Size, Kind: packet.KindAttack,
				}
			}
			src := agent.StartCBR(now, ratePerAgent, mk)
			b.sources = append(b.sources, src)
			if stop > 0 {
				b.net.Sim.At(stop, sim.EventFunc(func(sim.Time) { src.Stop() }))
			}
		}
	}
	// Kick off the C&C tree.
	b.net.Sim.At(at, sim.EventFunc(func(now sim.Time) {
		for _, m := range b.Masters {
			b.ControlSent++
			b.Attacker.Send(now, &packet.Packet{
				Src: b.Attacker.Addr, Dst: m.Addr,
				Proto: packet.TCP, DstPort: 31337,
				Size: controlPacketSize, Kind: packet.KindControl,
			})
		}
	}))
	// Masters relay as in Launch.
	for _, m := range b.Masters {
		master := m
		master.Recv = func(now sim.Time, pkt *packet.Packet) {
			if pkt.Kind != packet.KindControl {
				return
			}
			for _, a := range b.agentsOf[master.Addr] {
				b.ControlSent++
				master.Send(now, &packet.Packet{
					Src: master.Addr, Dst: a.Addr,
					Proto: packet.TCP, DstPort: 31337,
					Size: controlPacketSize, Kind: packet.KindControl,
				})
			}
		}
	}
	return nil
}
