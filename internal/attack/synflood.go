package attack

import (
	"dtc/internal/netsim"
	"dtc/internal/packet"
	"dtc/internal/sim"
)

// SYNServer models TCP connection establishment with a finite half-open
// connection table — the resource a SYN flood exhausts (paper §2.1).
// A SYN occupies a table slot until the handshake's final ACK arrives or
// the slot times out; a full table refuses new connections, legitimate
// ones included.
type SYNServer struct {
	Host    *netsim.Host
	Cap     int
	Timeout sim.Time

	halfOpen map[packet.FlowKey]sim.Time // flow -> expiry

	Established uint64 // completed handshakes
	Refused     uint64 // SYNs dropped because the table was full
	TimedOut    uint64 // half-open slots reclaimed by timeout
}

// NewSYNServer attaches a listening server to node.
func NewSYNServer(net *netsim.Network, node int, capacity int, timeout sim.Time) (*SYNServer, error) {
	h, err := net.AttachHost(node)
	if err != nil {
		return nil, err
	}
	s := &SYNServer{Host: h, Cap: capacity, Timeout: timeout, halfOpen: make(map[packet.FlowKey]sim.Time)}
	h.Recv = s.recv
	return s, nil
}

// HalfOpen returns the current half-open table occupancy.
func (s *SYNServer) HalfOpen() int { return len(s.halfOpen) }

func (s *SYNServer) recv(now sim.Time, pkt *packet.Packet) {
	if pkt.Proto != packet.TCP {
		return
	}
	key := pkt.Flow()
	switch {
	case pkt.Flags&packet.FlagSYN != 0 && pkt.Flags&packet.FlagACK == 0:
		if _, dup := s.halfOpen[key]; dup {
			return // retransmitted SYN
		}
		if len(s.halfOpen) >= s.Cap {
			s.Refused++
			return
		}
		s.halfOpen[key] = now + s.Timeout
		// SYN-ACK back to the claimed source.
		s.Host.Send(now, &packet.Packet{
			Src: s.Host.Addr, Dst: pkt.Src,
			Proto: packet.TCP, Flags: packet.FlagSYN | packet.FlagACK,
			SrcPort: pkt.DstPort, DstPort: pkt.SrcPort,
			Seq: pkt.Seq + 1, Size: packet.MinHeaderBytes + 12, Kind: pkt.Kind,
		})
		expiry := key
		s.Host.Sim().AfterFunc(s.Timeout, func(t sim.Time) {
			if exp, ok := s.halfOpen[expiry]; ok && t >= exp {
				delete(s.halfOpen, expiry)
				s.TimedOut++
			}
		})
	case pkt.Flags&packet.FlagACK != 0 && pkt.Flags&packet.FlagSYN == 0:
		if _, ok := s.halfOpen[key]; ok {
			delete(s.halfOpen, key)
			s.Established++
		}
	case pkt.Flags&packet.FlagRST != 0:
		delete(s.halfOpen, key)
	}
}

// SYNClient completes handshakes against a SYNServer: it sends a SYN and
// answers the SYN-ACK with an ACK.
type SYNClient struct {
	Host      *netsim.Host
	Completed uint64
	source    *netsim.Source
}

// NewSYNClient attaches a handshaking client to node.
func NewSYNClient(net *netsim.Network, node int) (*SYNClient, error) {
	h, err := net.AttachHost(node)
	if err != nil {
		return nil, err
	}
	c := &SYNClient{Host: h}
	h.Recv = func(now sim.Time, pkt *packet.Packet) {
		if pkt.Proto == packet.TCP && pkt.Flags == packet.FlagSYN|packet.FlagACK {
			c.Completed++
			h.Send(now, &packet.Packet{
				Src: h.Addr, Dst: pkt.Src,
				Proto: packet.TCP, Flags: packet.FlagACK,
				SrcPort: pkt.DstPort, DstPort: pkt.SrcPort,
				Seq: pkt.Seq + 1, Size: packet.MinHeaderBytes, Kind: packet.KindLegit,
			})
		}
	}
	return c, nil
}

// Start opens rate connections per second against server port 80.
func (c *SYNClient) Start(at sim.Time, server packet.Addr, rate float64) {
	c.source = c.Host.StartPoisson(at, rate, func(i uint64) *packet.Packet {
		return &packet.Packet{
			Src: c.Host.Addr, Dst: server,
			Proto: packet.TCP, Flags: packet.FlagSYN,
			SrcPort: uint16(1024 + i%50000), DstPort: 80,
			Seq: uint32(i), Size: packet.MinHeaderBytes + 12, Kind: packet.KindLegit,
		}
	})
}

// Stop halts connection attempts.
func (c *SYNClient) Stop() {
	if c.source != nil {
		c.source.Stop()
	}
}

// Attempted returns the number of SYNs sent.
func (c *SYNClient) Attempted() uint64 {
	if c.source == nil {
		return 0
	}
	return c.source.Sent()
}

// SYNFloodSpec returns the FloodSpec of a classic spoofed SYN flood.
func SYNFloodSpec(victim packet.Addr, rate float64) FloodSpec {
	return FloodSpec{
		Rate: rate, Size: packet.MinHeaderBytes + 12,
		Spoof: SpoofRandom, Proto: packet.TCP,
		Flags: packet.FlagSYN, DstPort: 80, Victim: victim,
	}
}
