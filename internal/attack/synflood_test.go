package attack

import (
	"testing"

	"dtc/internal/netsim"
	"dtc/internal/packet"
	"dtc/internal/sim"
	"dtc/internal/topology"
)

func TestSYNHandshake(t *testing.T) {
	s, net := star(t, 2)
	srv, err := NewSYNServer(net, 1, 128, 500*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewSYNClient(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start(0, srv.Host.Addr, 100)
	s.AfterFunc(200*sim.Millisecond, func(sim.Time) { cl.Stop(); s.Stop() })
	if _, err := s.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if cl.Attempted() == 0 {
		t.Fatal("no attempts")
	}
	if srv.Established != cl.Completed || srv.Established != cl.Attempted() {
		t.Errorf("attempted=%d completed=%d established=%d", cl.Attempted(), cl.Completed, srv.Established)
	}
	if srv.Refused != 0 || srv.HalfOpen() != 0 {
		t.Errorf("refused=%d halfopen=%d under normal load", srv.Refused, srv.HalfOpen())
	}
}

func TestSYNFloodExhaustsTable(t *testing.T) {
	s, net := star(t, 3)
	srv, err := NewSYNServer(net, 1, 64, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewSYNClient(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Spoofed flood: SYN-ACKs go to random nonexistent hosts, so the
	// half-open slots only clear by timeout.
	b, err := NewBotnet(net, 3, []int{3}, []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.LaunchDirect(0, SYNFloodSpec(srv.Host.Addr, 2000), 300*sim.Millisecond)
	cl.Start(50*sim.Millisecond, srv.Host.Addr, 100)
	s.AfterFunc(300*sim.Millisecond, func(sim.Time) { cl.Stop(); s.Stop() })
	if _, err := s.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if srv.HalfOpen() != srv.Cap {
		t.Errorf("half-open table = %d, want full (%d)", srv.HalfOpen(), srv.Cap)
	}
	if srv.Refused == 0 {
		t.Error("no refusals despite flood")
	}
	// Legitimate clients are starved: most handshakes refused.
	ratio := float64(cl.Completed) / float64(cl.Attempted())
	if ratio > 0.5 {
		t.Errorf("legit completion ratio %.2f under flood, expected starvation", ratio)
	}
}

func TestSYNTableTimeoutReclaims(t *testing.T) {
	s, net := star(t, 2)
	srv, err := NewSYNServer(net, 1, 8, 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	agent, _ := net.AttachHost(2)
	agent.SendBurst(0, 8, func(i uint64) *packet.Packet {
		return &packet.Packet{
			Src: packet.Addr(0xF0000000 + uint32(i)), Dst: srv.Host.Addr,
			Proto: packet.TCP, Flags: packet.FlagSYN,
			SrcPort: uint16(i), DstPort: 80, Size: 40, Kind: packet.KindAttack,
		}
	})
	if _, err := s.Run(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if srv.HalfOpen() != 8 {
		t.Fatalf("half-open = %d after burst", srv.HalfOpen())
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if srv.HalfOpen() != 0 || srv.TimedOut != 8 {
		t.Errorf("halfopen=%d timedout=%d after timeout", srv.HalfOpen(), srv.TimedOut)
	}
}

func TestSYNServerIgnoresNonTCPAndRST(t *testing.T) {
	s, net := star(t, 2)
	srv, err := NewSYNServer(net, 1, 8, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := net.AttachHost(2)
	// UDP is ignored.
	h.Send(0, &packet.Packet{Src: h.Addr, Dst: srv.Host.Addr, Proto: packet.UDP, Size: 40})
	// SYN then RST clears the slot. Run with bounded horizons so the
	// half-open timeout (1s) does not fire between checks.
	h.Send(0, &packet.Packet{Src: h.Addr, Dst: srv.Host.Addr, Proto: packet.TCP, Flags: packet.FlagSYN, SrcPort: 5, DstPort: 80, Size: 40})
	if _, err := s.Run(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if srv.HalfOpen() != 1 {
		t.Fatalf("half-open = %d", srv.HalfOpen())
	}
	h.Send(s.Now(), &packet.Packet{Src: h.Addr, Dst: srv.Host.Addr, Proto: packet.TCP, Flags: packet.FlagRST, SrcPort: 5, DstPort: 80, Size: 40})
	if _, err := s.Run(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if srv.HalfOpen() != 0 {
		t.Errorf("RST did not clear the slot")
	}
	// Duplicate SYNs occupy one slot.
	for i := 0; i < 3; i++ {
		h.Send(s.Now(), &packet.Packet{Src: h.Addr, Dst: srv.Host.Addr, Proto: packet.TCP, Flags: packet.FlagSYN, SrcPort: 9, DstPort: 80, Size: 40})
	}
	if _, err := s.Run(30 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if srv.HalfOpen() != 1 {
		t.Errorf("duplicate SYNs created %d slots", srv.HalfOpen())
	}
}

// TestSYNFloodMitigatedByAntiSpoof wires the full story: the spoofed SYN
// flood dies at an ingress filter, so the table stays available.
func TestSYNFloodMitigatedByAntiSpoof(t *testing.T) {
	s := sim.New(1)
	net := mustNet(t, s)
	srv, err := NewSYNServer(net, 3, 64, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Hook emulating a strict ingress filter at the agents' edge (node 0):
	// unallocated sources die immediately.
	net.AddHook(0, netsim.HookFunc{Label: "ingress", Fn: func(_ sim.Time, p *packet.Packet, ctx netsim.HookContext) netsim.Verdict {
		if _, ok := ctx.Net.NodeOfAddr(p.Src); !ok {
			return netsim.Drop
		}
		return netsim.Pass
	}})
	b, err := NewBotnet(net, 0, []int{0}, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.LaunchDirect(0, SYNFloodSpec(srv.Host.Addr, 2000), 200*sim.Millisecond)
	cl, err := NewSYNClient(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start(0, srv.Host.Addr, 100)
	s.AfterFunc(200*sim.Millisecond, func(sim.Time) { cl.Stop(); s.Stop() })
	if _, err := s.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if srv.Refused != 0 {
		t.Errorf("refused %d legit connections despite filtering", srv.Refused)
	}
	if cl.Completed != cl.Attempted() {
		t.Errorf("completed %d/%d with defense up", cl.Completed, cl.Attempted())
	}
}

func mustNet(t *testing.T, s *sim.Simulation) *netsim.Network {
	t.Helper()
	net, err := netsim.New(s, lineGraph(4), netsim.DefaultLink)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func lineGraph(n int) *topology.Graph { return topology.Line(n) }
