// Package attack builds the DDoS scenarios of the paper's Section 2 on a
// simulated network: the attacker→master→agent amplification tree
// (Figure 1), direct spoofed floods, SYN floods, reflector attacks against
// innocent servers, and protocol-misuse attacks (forged RST / ICMP
// teardown). It also provides the legitimate client/server workload that
// experiments measure collateral damage against.
package attack

import (
	"fmt"

	"dtc/internal/netsim"
	"dtc/internal/packet"
	"dtc/internal/sim"
)

// SpoofMode selects how flood agents forge source addresses.
type SpoofMode uint8

// Spoofing strategies.
const (
	SpoofNone   SpoofMode = iota // agent's own address
	SpoofRandom                  // uniformly random 32-bit sources
	SpoofSubnet                  // random host inside the agent's own /16
	SpoofVictim                  // the victim's address (reflector attacks)
)

// String implements fmt.Stringer.
func (m SpoofMode) String() string {
	switch m {
	case SpoofNone:
		return "none"
	case SpoofRandom:
		return "random"
	case SpoofSubnet:
		return "subnet"
	case SpoofVictim:
		return "victim"
	default:
		return fmt.Sprintf("spoof(%d)", uint8(m))
	}
}

// FloodSpec parameterizes one agent's flood.
type FloodSpec struct {
	Rate    float64 // packets per second per agent
	Size    int     // bytes per packet
	Spoof   SpoofMode
	Proto   packet.Proto
	DstPort uint16
	Flags   uint8 // TCP flags or ICMP type
	Victim  packet.Addr
}

// Botnet is the paper's amplifying network: one attacker controlling
// masters, each controlling agents (Figure 1).
type Botnet struct {
	net      *netsim.Network
	Attacker *netsim.Host
	Masters  []*netsim.Host
	Agents   []*netsim.Host

	agentsOf map[packet.Addr][]*netsim.Host // master addr -> its agents
	sources  []*netsim.Source

	// ControlSent counts C&C packets (attacker->masters->agents); the F1
	// experiment divides attack packets by this to get the rate
	// amplification factor.
	ControlSent uint64
}

// controlPacketSize is the size of command packets in the C&C tree.
const controlPacketSize = 64

// NewBotnet attaches the attacker, masters and agents to the given nodes.
// Agents are distributed round-robin over agentNodes.
func NewBotnet(net *netsim.Network, attackerNode int, masterNodes []int, agentNodes []int, agentsPerMaster int) (*Botnet, error) {
	if len(masterNodes) == 0 || len(agentNodes) == 0 || agentsPerMaster < 1 {
		return nil, fmt.Errorf("attack: empty botnet configuration")
	}
	b := &Botnet{net: net, agentsOf: make(map[packet.Addr][]*netsim.Host)}
	var err error
	if b.Attacker, err = net.AttachHost(attackerNode); err != nil {
		return nil, err
	}
	agentIdx := 0
	for _, mn := range masterNodes {
		m, err := net.AttachHost(mn)
		if err != nil {
			return nil, err
		}
		b.Masters = append(b.Masters, m)
		for i := 0; i < agentsPerMaster; i++ {
			a, err := net.AttachHost(agentNodes[agentIdx%len(agentNodes)])
			agentIdx++
			if err != nil {
				return nil, err
			}
			b.Agents = append(b.Agents, a)
			b.agentsOf[m.Addr] = append(b.agentsOf[m.Addr], a)
		}
	}
	return b, nil
}

// Launch wires the C&C tree and schedules the attack command at `at`:
// the attacker sends one control packet per master; each master, on
// receiving it, sends one control packet per agent; each agent, on
// receiving its command, starts flooding per spec until stop (0 = forever).
func (b *Botnet) Launch(at sim.Time, spec FloodSpec, stop sim.Time) {
	for _, m := range b.Masters {
		master := m
		master.Recv = func(now sim.Time, pkt *packet.Packet) {
			if pkt.Kind != packet.KindControl {
				return
			}
			for _, a := range b.agentsOf[master.Addr] {
				b.ControlSent++
				master.Send(now, &packet.Packet{
					Src: master.Addr, Dst: a.Addr,
					Proto: packet.TCP, DstPort: 31337,
					Size: controlPacketSize, Kind: packet.KindControl,
				})
			}
		}
	}
	for _, a := range b.Agents {
		agent := a
		agent.Recv = func(now sim.Time, pkt *packet.Packet) {
			if pkt.Kind != packet.KindControl {
				return
			}
			src := b.startFlood(now, agent, spec)
			if stop > 0 {
				b.net.Sim.At(stop, sim.EventFunc(func(sim.Time) { src.Stop() }))
			}
		}
	}
	b.net.Sim.At(at, sim.EventFunc(func(now sim.Time) {
		for _, m := range b.Masters {
			b.ControlSent++
			b.Attacker.Send(now, &packet.Packet{
				Src: b.Attacker.Addr, Dst: m.Addr,
				Proto: packet.TCP, DstPort: 31337,
				Size: controlPacketSize, Kind: packet.KindControl,
			})
		}
	}))
}

// LaunchDirect skips the C&C tree and starts all agents flooding at `at`
// (for experiments that do not care about the control phase).
func (b *Botnet) LaunchDirect(at sim.Time, spec FloodSpec, stop sim.Time) {
	for _, a := range b.Agents {
		agent := a
		b.net.Sim.At(at, sim.EventFunc(func(now sim.Time) {
			src := b.startFlood(now, agent, spec)
			if stop > 0 {
				b.net.Sim.At(stop, sim.EventFunc(func(sim.Time) { src.Stop() }))
			}
		}))
	}
}

// startFlood begins one agent's flood and returns its source.
func (b *Botnet) startFlood(now sim.Time, agent *netsim.Host, spec FloodSpec) *netsim.Source {
	rng := b.net.Sim.RNG().Fork()
	proto := spec.Proto
	if proto == 0 {
		proto = packet.UDP
	}
	size := spec.Size
	if size == 0 {
		size = 100
	}
	mk := func(i uint64) *packet.Packet {
		p := &packet.Packet{
			Dst: spec.Victim, Proto: proto, DstPort: spec.DstPort,
			Flags: spec.Flags, Size: size, Kind: packet.KindAttack,
			SrcPort: uint16(1024 + i%60000), Seq: uint32(i),
		}
		switch spec.Spoof {
		case SpoofNone:
			p.Src = agent.Addr
		case SpoofRandom:
			p.Src = packet.Addr(rng.Uint32())
		case SpoofSubnet:
			p.Src = netsim.NodePrefix(agent.Node).Nth(uint64(rng.Intn(65536)))
		case SpoofVictim:
			p.Src = spec.Victim
		}
		return p
	}
	src := agent.StartCBR(now, spec.Rate, mk)
	b.sources = append(b.sources, src)
	return src
}

// StopAll halts every flood source.
func (b *Botnet) StopAll() {
	for _, s := range b.sources {
		s.Stop()
	}
}

// AttackSent sums the packets emitted by all flood sources.
func (b *Botnet) AttackSent() uint64 {
	var t uint64
	for _, s := range b.sources {
		t += s.Sent()
	}
	return t
}
