package attack

import (
	"dtc/internal/netsim"
	"dtc/internal/packet"
	"dtc/internal/sim"
)

// Client is a legitimate user of the victim's service: it issues Poisson
// requests and counts the replies it gets back. Client goodput is the
// primary collateral-damage metric in the mitigation experiments.
type Client struct {
	Host    *netsim.Host
	Replies uint64
	source  *netsim.Source
}

// NewClients attaches one legitimate client per node.
func NewClients(net *netsim.Network, nodes []int) ([]*Client, error) {
	out := make([]*Client, 0, len(nodes))
	for _, n := range nodes {
		h, err := net.AttachHost(n)
		if err != nil {
			return nil, err
		}
		c := &Client{Host: h}
		h.Recv = func(_ sim.Time, pkt *packet.Packet) {
			if pkt.Kind == packet.KindLegit {
				c.Replies++
			}
		}
		out = append(out, c)
	}
	return out, nil
}

// Start begins issuing requests to server at the given mean rate.
func (c *Client) Start(at sim.Time, server packet.Addr, rate float64, reqSize int) {
	if reqSize == 0 {
		reqSize = 200
	}
	c.source = c.Host.StartPoisson(at, rate, func(i uint64) *packet.Packet {
		return &packet.Packet{
			Src: c.Host.Addr, Dst: server,
			Proto: packet.TCP, DstPort: 80, SrcPort: uint16(2000 + i%1000),
			Flags: packet.FlagPSH | packet.FlagACK,
			Size:  reqSize, Kind: packet.KindLegit, Seq: uint32(i),
		}
	})
}

// Stop halts request generation.
func (c *Client) Stop() {
	if c.source != nil {
		c.source.Stop()
	}
}

// Requested returns the number of requests issued.
func (c *Client) Requested() uint64 {
	if c.source == nil {
		return 0
	}
	return c.source.Sent()
}

// VictimService is the attacked server plus its reply behaviour: every
// served request generates a response to the requester.
type VictimService struct {
	Server *netsim.Server
}

// NewVictimService attaches a replying server to node.
func NewVictimService(net *netsim.Network, node int, serviceTime sim.Time, queueCap int, respSize int) (*VictimService, error) {
	srv, err := net.NewServer(node, serviceTime, queueCap)
	if err != nil {
		return nil, err
	}
	if respSize == 0 {
		respSize = 800
	}
	v := &VictimService{Server: srv}
	srv.OnServe = func(now sim.Time, req *packet.Packet) {
		// Replies go to whoever the request claimed to be. Replies to
		// legitimate clients are goodput; replies to spoofed sources are
		// backscatter and die as noroute/nohost drops.
		resp := &packet.Packet{
			Src: srv.Host.Addr, Dst: req.Src,
			Proto: packet.TCP, SrcPort: req.DstPort, DstPort: req.SrcPort,
			Flags: packet.FlagPSH | packet.FlagACK,
			Size:  respSize, Kind: req.Kind, Seq: req.Seq + 1,
		}
		srv.Host.Send(now, resp)
	}
	return v, nil
}

// TCPSession models an established long-lived TCP connection between two
// hosts for the protocol-misuse experiment (E8): forged RST or ICMP
// unreachable packets tear it down.
type TCPSession struct {
	A, B      *netsim.Host
	TornDown  bool
	DataRecvd uint64
}

// NewTCPSession wires two fresh hosts into a session; B tears the session
// down when it receives a bare RST or an ICMP unreachable claiming to be
// from A.
func NewTCPSession(net *netsim.Network, nodeA, nodeB int) (*TCPSession, error) {
	a, err := net.AttachHost(nodeA)
	if err != nil {
		return nil, err
	}
	b, err := net.AttachHost(nodeB)
	if err != nil {
		return nil, err
	}
	s := &TCPSession{A: a, B: b}
	b.Recv = func(_ sim.Time, pkt *packet.Packet) {
		if pkt.Src != a.Addr {
			return
		}
		switch {
		case pkt.Proto == packet.TCP && pkt.Flags&packet.FlagRST != 0:
			s.TornDown = true
		case pkt.Proto == packet.ICMP && pkt.Flags == packet.ICMPUnreachable:
			s.TornDown = true
		case pkt.Proto == packet.TCP:
			if !s.TornDown {
				s.DataRecvd++
			}
		}
	}
	return s, nil
}

// StartData begins a steady data stream A->B at rate packets/second.
func (s *TCPSession) StartData(at sim.Time, rate float64) *netsim.Source {
	return s.A.StartCBR(at, rate, func(i uint64) *packet.Packet {
		return &packet.Packet{
			Src: s.A.Addr, Dst: s.B.Addr,
			Proto: packet.TCP, SrcPort: 5000, DstPort: 5001,
			Flags: packet.FlagACK | packet.FlagPSH,
			Size:  512, Kind: packet.KindLegit, Seq: uint32(i),
		}
	})
}

// ForgeTeardown sends a forged teardown packet from the given agent,
// claiming to come from session endpoint A.
func ForgeTeardown(agent *netsim.Host, s *TCPSession, at sim.Time, useICMP bool) {
	agent.SendBurst(at, 1, func(uint64) *packet.Packet {
		p := &packet.Packet{
			Src: s.A.Addr, Dst: s.B.Addr, // spoofed!
			Size: packet.MinHeaderBytes, Kind: packet.KindAttack,
		}
		if useICMP {
			p.Proto = packet.ICMP
			p.Flags = packet.ICMPUnreachable
			p.ICMPCode = packet.ICMPHostUnreachSub
		} else {
			p.Proto = packet.TCP
			p.SrcPort, p.DstPort = 5000, 5001
			p.Flags = packet.FlagRST
		}
		return p
	})
}
