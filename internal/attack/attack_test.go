package attack

import (
	"testing"

	"dtc/internal/netsim"
	"dtc/internal/packet"
	"dtc/internal/sim"
	"dtc/internal/topology"
)

// star builds a star network: hub 0, leaves 1..n.
func star(t *testing.T, leaves int) (*sim.Simulation, *netsim.Network) {
	t.Helper()
	s := sim.New(1)
	net, err := netsim.New(s, topology.Star(leaves), netsim.DefaultLink)
	if err != nil {
		t.Fatal(err)
	}
	return s, net
}

func TestBotnetConstruction(t *testing.T) {
	_, net := star(t, 8)
	b, err := NewBotnet(net, 1, []int{2, 3}, []int{4, 5, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Masters) != 2 || len(b.Agents) != 6 {
		t.Fatalf("masters=%d agents=%d", len(b.Masters), len(b.Agents))
	}
	if _, err := NewBotnet(net, 1, nil, []int{2}, 1); err == nil {
		t.Error("empty masters accepted")
	}
	if _, err := NewBotnet(net, 1, []int{2}, []int{3}, 0); err == nil {
		t.Error("zero agents accepted")
	}
}

func TestCommandAndControlChain(t *testing.T) {
	s, net := star(t, 8)
	victim, _ := net.AttachHost(8)
	b, err := NewBotnet(net, 1, []int{2, 3}, []int{4, 5, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	b.Launch(10*sim.Millisecond, FloodSpec{Rate: 1000, Size: 100, Victim: victim.Addr}, 110*sim.Millisecond)
	if _, err := s.Run(300 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// C&C: 2 to masters + 6 to agents.
	if b.ControlSent != 8 {
		t.Errorf("control packets = %d, want 8", b.ControlSent)
	}
	// 6 agents at 1000pps for ~100ms => ~600 attack packets.
	if sent := b.AttackSent(); sent < 400 || sent > 800 {
		t.Errorf("attack packets = %d, want ~600", sent)
	}
	// Amplification: attack volume >> control volume.
	if b.AttackSent() < 10*b.ControlSent {
		t.Error("no rate amplification through the C&C tree")
	}
	if victim.Delivered[packet.KindAttack] == 0 {
		t.Error("no attack traffic delivered to victim")
	}
}

func TestSpoofModes(t *testing.T) {
	for _, mode := range []SpoofMode{SpoofNone, SpoofRandom, SpoofSubnet, SpoofVictim} {
		s, net := star(t, 4)
		victim, _ := net.AttachHost(2)
		var srcs []packet.Addr
		victim.Recv = func(_ sim.Time, p *packet.Packet) { srcs = append(srcs, p.Src) }
		b, err := NewBotnet(net, 1, []int{3}, []int{4}, 1)
		if err != nil {
			t.Fatal(err)
		}
		b.LaunchDirect(0, FloodSpec{Rate: 1000, Size: 100, Spoof: mode, Victim: victim.Addr}, 20*sim.Millisecond)
		if _, err := s.Run(100 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if len(srcs) == 0 {
			t.Fatalf("mode %v: no packets", mode)
		}
		agent := b.Agents[0]
		switch mode {
		case SpoofNone:
			for _, a := range srcs {
				if a != agent.Addr {
					t.Errorf("SpoofNone produced %v", a)
				}
			}
		case SpoofVictim:
			for _, a := range srcs {
				if a != victim.Addr {
					t.Errorf("SpoofVictim produced %v", a)
				}
			}
		case SpoofSubnet:
			pfx := netsim.NodePrefix(agent.Node)
			for _, a := range srcs {
				if !pfx.Contains(a) {
					t.Errorf("SpoofSubnet produced %v outside %v", a, pfx)
				}
			}
		case SpoofRandom:
			distinct := map[packet.Addr]bool{}
			for _, a := range srcs {
				distinct[a] = true
			}
			if len(distinct) < len(srcs)/2 {
				t.Errorf("SpoofRandom produced only %d distinct sources in %d", len(distinct), len(srcs))
			}
		}
		if mode.String() == "" {
			t.Error("empty mode string")
		}
	}
}

func TestReflectorReply(t *testing.T) {
	s, net := star(t, 4)
	victim, _ := net.AttachHost(1)
	refl, err := NewReflector(net, 2, ReflectWeb, 10*sim.Microsecond, 64)
	if err != nil {
		t.Fatal(err)
	}
	agent, _ := net.AttachHost(3)
	// Agent sends a SYN to the reflector with the victim's spoofed source.
	agent.SendBurst(0, 5, func(i uint64) *packet.Packet {
		return &packet.Packet{
			Src: victim.Addr, Dst: refl.Server.Host.Addr,
			Proto: packet.TCP, Flags: packet.FlagSYN, DstPort: 80,
			Size: 40, Kind: packet.KindAttack, Seq: uint32(i),
		}
	})
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if refl.Reflected != 5 {
		t.Errorf("Reflected = %d", refl.Reflected)
	}
	// Victim receives SYN-ACKs with the reflector's (legitimate) source.
	if victim.Delivered[packet.KindReflect] != 5 {
		t.Errorf("victim got %d reflected packets", victim.Delivered[packet.KindReflect])
	}
}

func TestReflectorKinds(t *testing.T) {
	for _, kind := range []ReflectorKind{ReflectWeb, ReflectDNS, ReflectICMP} {
		s, net := star(t, 3)
		victim, _ := net.AttachHost(1)
		var got *packet.Packet
		victim.Recv = func(_ sim.Time, p *packet.Packet) { got = p }
		refl, err := NewReflector(net, 2, kind, sim.Microsecond, 16)
		if err != nil {
			t.Fatal(err)
		}
		agent, _ := net.AttachHost(2)
		spec := ReflectorSpec(victim.Addr, kind, 1)
		agent.SendBurst(0, 1, func(uint64) *packet.Packet {
			return &packet.Packet{
				Src: victim.Addr, Dst: refl.Server.Host.Addr,
				Proto: spec.Proto, Flags: spec.Flags, DstPort: spec.DstPort,
				Size: spec.Size, Kind: packet.KindAttack,
			}
		})
		if _, err := s.RunAll(); err != nil {
			t.Fatal(err)
		}
		if got == nil {
			t.Fatalf("kind %v: no reflection", kind)
		}
		switch kind {
		case ReflectWeb:
			if got.Proto != packet.TCP || got.Flags != packet.FlagSYN|packet.FlagACK {
				t.Errorf("web reflection = %v", got)
			}
		case ReflectDNS:
			if got.Proto != packet.UDP || got.Size != spec.Size*DNSAmplification {
				t.Errorf("dns reflection size = %d, want %d", got.Size, spec.Size*DNSAmplification)
			}
		case ReflectICMP:
			if got.Proto != packet.ICMP || got.Flags != packet.ICMPUnreachable {
				t.Errorf("icmp reflection = %v", got)
			}
		}
		if kind.String() == "" {
			t.Error("empty kind string")
		}
	}
}

func TestReflectorLegitTraffic(t *testing.T) {
	s, net := star(t, 3)
	client, _ := net.AttachHost(1)
	replies := 0
	client.Recv = func(_ sim.Time, p *packet.Packet) {
		if p.Kind == packet.KindLegit {
			replies++
		}
	}
	refl, err := NewReflector(net, 2, ReflectWeb, sim.Microsecond, 16)
	if err != nil {
		t.Fatal(err)
	}
	client.SendBurst(0, 3, func(i uint64) *packet.Packet {
		return &packet.Packet{
			Src: client.Addr, Dst: refl.Server.Host.Addr,
			Proto: packet.TCP, Flags: packet.FlagSYN, DstPort: 80,
			Size: 40, Kind: packet.KindLegit, Seq: uint32(i),
		}
	})
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if refl.Replied != 3 || refl.Reflected != 0 {
		t.Errorf("replied=%d reflected=%d", refl.Replied, refl.Reflected)
	}
	if replies != 3 {
		t.Errorf("client got %d replies", replies)
	}
}

func TestFullReflectorAttack(t *testing.T) {
	s, net := star(t, 10)
	victim, _ := net.AttachHost(1)
	reflectors, err := NewReflectorFleet(net, []int{2, 3, 4}, ReflectWeb, 10*sim.Microsecond, 1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBotnet(net, 5, []int{6}, []int{7, 8, 9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LaunchReflectorAttack(0, reflectors, ReflectWeb, victim.Addr, 2000, 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(300 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if victim.Delivered[packet.KindReflect] == 0 {
		t.Fatal("victim received no reflected traffic")
	}
	// The traffic hitting the victim has *legitimate* reflector sources.
	var fromReflectors uint64
	for _, r := range reflectors {
		fromReflectors += r.Reflected
	}
	if fromReflectors == 0 {
		t.Error("reflectors reflected nothing")
	}
	if err := b.LaunchReflectorAttack(0, nil, ReflectWeb, victim.Addr, 1, 0); err == nil {
		t.Error("empty reflector list accepted")
	}
}

func TestClientsAndVictimService(t *testing.T) {
	s, net := star(t, 4)
	v, err := NewVictimService(net, 1, 50*sim.Microsecond, 64, 800)
	if err != nil {
		t.Fatal(err)
	}
	clients, err := NewClients(net, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		c.Start(0, v.Server.Host.Addr, 200, 200)
	}
	s.AfterFunc(500*sim.Millisecond, func(sim.Time) {
		for _, c := range clients {
			c.Stop()
		}
		s.Stop()
	})
	if _, err := s.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	for i, c := range clients {
		if c.Requested() == 0 {
			t.Fatalf("client %d sent nothing", i)
		}
		ratio := float64(c.Replies) / float64(c.Requested())
		if ratio < 0.9 {
			t.Errorf("client %d goodput ratio = %.2f under no attack", i, ratio)
		}
	}
}

func TestTCPSessionTeardown(t *testing.T) {
	for _, useICMP := range []bool{false, true} {
		s, net := star(t, 3)
		sess, err := NewTCPSession(net, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		src := sess.StartData(0, 1000)
		agent, _ := net.AttachHost(3)
		ForgeTeardown(agent, sess, 50*sim.Millisecond, useICMP)
		s.AfterFunc(100*sim.Millisecond, func(sim.Time) { src.Stop(); s.Stop() })
		if _, err := s.Run(200 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if !sess.TornDown {
			t.Errorf("useICMP=%v: forged teardown did not kill the session", useICMP)
		}
		if sess.DataRecvd == 0 {
			t.Error("no data flowed before teardown")
		}
	}
}

func TestTCPSessionSurvivesWithoutAttack(t *testing.T) {
	s, net := star(t, 2)
	sess, err := NewTCPSession(net, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := sess.StartData(0, 100)
	s.AfterFunc(100*sim.Millisecond, func(sim.Time) { src.Stop(); s.Stop() })
	if _, err := s.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if sess.TornDown {
		t.Error("session torn down without attack")
	}
	if sess.DataRecvd < 8 {
		t.Errorf("data received = %d", sess.DataRecvd)
	}
}
