package sim_test

import (
	"fmt"

	"dtc/internal/sim"
)

// ExampleSimulation shows the deterministic event loop all experiments
// run on.
func ExampleSimulation() {
	s := sim.New(42)
	s.AfterFunc(2*sim.Millisecond, func(now sim.Time) {
		fmt.Println("second at", now)
	})
	s.AfterFunc(sim.Millisecond, func(now sim.Time) {
		fmt.Println("first at", now)
		s.AfterFunc(5*sim.Millisecond, func(now sim.Time) {
			fmt.Println("third at", now)
		})
	})
	end, _ := s.RunAll()
	fmt.Println("done at", end)
	// Output:
	// first at 1ms
	// second at 2ms
	// third at 6ms
	// done at 6ms
}

// ExampleSimulation_NewTicker demonstrates periodic work.
func ExampleSimulation_NewTicker() {
	s := sim.New(1)
	n := 0
	var tk *sim.Ticker
	tk = s.NewTicker(10*sim.Millisecond, func(now sim.Time) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	if _, err := s.RunAll(); err != nil {
		fmt.Println(err)
	}
	fmt.Println("ticks:", n)
	// Output:
	// ticks: 3
}
