package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched on %d/100 draws", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %v", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	const mean, draws = 4.0, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	if got := sum / draws; math.Abs(got-mean) > 0.1 {
		t.Errorf("empirical mean = %v, want ~%v", got, mean)
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRNG(17)
	const xm, alpha = 2.0, 1.5
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(xm, alpha); v < xm {
			t.Fatalf("Pareto produced %v below scale %v", v, xm)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(19)
	const mean, sd, draws = 10.0, 3.0, 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		v := r.Normal(mean, sd)
		sum += v
		sumsq += v * v
	}
	m := sum / draws
	if math.Abs(m-mean) > 0.05 {
		t.Errorf("mean = %v, want ~%v", m, mean)
	}
	if v := sumsq/draws - m*m; math.Abs(math.Sqrt(v)-sd) > 0.05 {
		t.Errorf("stddev = %v, want ~%v", math.Sqrt(v), sd)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	for _, n := range []int{0, 1, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(29)
	f1 := r.Fork()
	f2 := r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if f1.Uint32() == f2.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked streams matched on %d/100 draws", same)
	}
}

func TestSubstreamDeterminism(t *testing.T) {
	a, b := NewRNG(42).Substream(7), NewRNG(42).Substream(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same substream diverged at draw %d", i)
		}
	}
}

func TestSubstreamIgnoresConsumption(t *testing.T) {
	fresh := NewRNG(42)
	drained := NewRNG(42)
	for i := 0; i < 500; i++ {
		drained.Uint64()
	}
	a, b := fresh.Substream(3), drained.Substream(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Substream depends on parent consumption position")
		}
	}
}

func TestSubstreamIndependence(t *testing.T) {
	r := NewRNG(42)
	// Distinct indices must give uncorrelated streams; also check each
	// substream differs from the parent's own stream.
	streams := []*RNG{r.Substream(0), r.Substream(1), r.Substream(2), NewRNG(42)}
	const draws = 200
	vals := make([][]uint32, len(streams))
	for i, s := range streams {
		vals[i] = make([]uint32, draws)
		for j := range vals[i] {
			vals[i][j] = s.Uint32()
		}
	}
	for i := 0; i < len(streams); i++ {
		for j := i + 1; j < len(streams); j++ {
			same := 0
			for k := 0; k < draws; k++ {
				if vals[i][k] == vals[j][k] {
					same++
				}
			}
			if same > 4 {
				t.Errorf("streams %d and %d matched on %d/%d draws", i, j, same, draws)
			}
		}
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 45 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
	diff := false
	for i := range xs {
		if xs[i] != orig[i] {
			diff = true
		}
	}
	if !diff {
		t.Log("shuffle left slice unchanged (possible but unlikely)")
	}
}

// Property: Perm output is always a bijection.
func TestPropertyPerm(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		p := NewRNG(seed).Perm(int(n))
		seen := make(map[int]bool, len(p))
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
