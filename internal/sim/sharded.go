// Sharded parallel discrete-event execution: conservative lookahead in the
// null-message tradition, specialised to barrier-windowed rounds.
//
// A Sharded coordinator owns N independent Simulations ("shards"). The
// partitioned model (e.g. netsim's sharded network) must guarantee the
// conservative contract: any event one shard generates for another carries
// a timestamp at least Lookahead beyond the generating shard's clock at
// generation time. Under that contract, all events with deadlines inside
// the window [T, T+Lookahead) — where T is the global minimum pending
// event time — are causally independent across shards, so every shard can
// burn through its share of the window in parallel with no locks on the
// hot path. Cross-shard events travel through model-owned outboxes drained
// by barrier hooks between rounds, when no shard goroutine is running.
//
// Determinism: each shard is the ordinary single-threaded engine, so
// intra-shard order is (time, seq) exactly as before. Cross-shard
// deliveries happen at barriers in a fixed hook/shard order, independent
// of goroutine scheduling, so a run is bit-reproducible for a fixed seed,
// shard assignment and lookahead. Shard-COUNT invariance additionally
// requires the model to draw randomness from per-entity substreams (not
// per-shard streams) and to avoid equal-timestamp interactions across
// shards; DESIGN.md §10 states the full contract.
package sim

import "runtime"

// Sharded runs N Simulations in conservatively synchronized rounds.
// Construct with NewSharded; set Lookahead to the minimum cross-shard
// event latency before calling Run.
type Sharded struct {
	sims []*Simulation

	// Lookahead is the conservative window width: the minimum delay any
	// cross-shard event experiences. 0 (the default) falls back to
	// lockstep rounds that fire only events at the global minimum time —
	// always safe, minimally parallel. A Lookahead larger than the true
	// minimum cross-shard latency violates causality; the violation is
	// caught at delivery time (scheduling into a shard's past panics).
	Lookahead Time

	// Workers bounds the goroutines executing shards within one round;
	// <= 0 means GOMAXPROCS. Results are identical at any worker count.
	Workers int

	barriers []func()
	roundEnd Time // window horizon for the round in flight
	errs     []error
}

// NewSharded returns a coordinator over `shards` fresh Simulations. Shard
// i's RNG is NewRNG(seed).Substream(i), so engine-internal randomness is
// reproducible; models wanting shard-count-invariant results must key
// their own substreams by stable entity IDs instead.
func NewSharded(seed uint64, shards int) *Sharded {
	if shards < 1 {
		panic("sim: NewSharded needs at least one shard")
	}
	root := NewRNG(seed)
	sims := make([]*Simulation, shards)
	for i := range sims {
		sims[i] = &Simulation{rng: root.Substream(uint64(i))}
	}
	return &Sharded{sims: sims, errs: make([]error, shards)}
}

// Shards returns the number of shards.
func (ss *Sharded) Shards() int { return len(ss.sims) }

// Shard returns the i-th shard's simulation. Shard-local model state (a
// shard's network, its event scheduling) hangs off this; during a round it
// must be touched only by the goroutine running that shard.
func (ss *Sharded) Shard(i int) *Simulation { return ss.sims[i] }

// OnBarrier registers fn to run between rounds, single-threaded, before
// the next window is chosen. Models drain their cross-shard outboxes here:
// at barrier time no shard goroutine is running, so a hook may touch every
// shard's queue. Hooks run in registration order.
func (ss *Sharded) OnBarrier(fn func()) { ss.barriers = append(ss.barriers, fn) }

// Fired returns the total events fired across all shards. For a fixed
// model this is shard-count-invariant: every hop, delivery and completion
// is exactly one event no matter which shard runs it.
func (ss *Sharded) Fired() uint64 {
	var n uint64
	for _, s := range ss.sims {
		n += s.fired
	}
	return n
}

// Pending returns the live events queued across all shards.
func (ss *Sharded) Pending() int {
	n := 0
	for _, s := range ss.sims {
		n += s.Pending()
	}
	return n
}

// Now returns the frontier clock — the furthest any shard has advanced.
// Between Run calls all shard clocks agree except shards idle past the
// last event, which lag at their final window edge.
func (ss *Sharded) Now() Time {
	var m Time
	for _, s := range ss.sims {
		if s.Now() > m {
			m = s.Now()
		}
	}
	return m
}

// SetEventLimit arms every shard's EventLimit with limit (0 disarms). The
// bound is per shard, so a zero-delay cross-shard event cycle — the
// parallel analogue of a single-engine event storm — still terminates
// with ErrEventLimit instead of spinning forever.
func (ss *Sharded) SetEventLimit(limit uint64) {
	for _, s := range ss.sims {
		s.EventLimit = limit
	}
}

// Run executes rounds until no shard holds an event with deadline <= until
// (events exactly at until still fire, matching Simulation.Run). It
// returns the frontier time. The first shard error (by shard index) aborts
// the run after its round completes.
func (ss *Sharded) Run(until Time) (Time, error) {
	n := len(ss.sims)
	workers := ss.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// Persistent round pool: workers pull shard indices for the round in
	// flight; the two channel hops per shard per round are the only
	// synchronization the parallel path pays. The channels are handed to
	// the workers as arguments, not captured: a by-reference capture would
	// move both variables to the heap at function entry, taxing even the
	// serial path (which must stay allocation-free) with two allocations
	// per Run call.
	var work chan int
	var done chan struct{}
	if workers > 1 {
		wch := make(chan int, n)
		dch := make(chan struct{}, n)
		work, done = wch, dch
		for w := 0; w < workers; w++ {
			go func(work chan int, done chan struct{}) {
				for i := range work {
					_, ss.errs[i] = ss.sims[i].Run(ss.roundEnd)
					done <- struct{}{}
				}
			}(wch, dch)
		}
		defer close(wch)
	}

	for {
		// Barrier: deliver cross-shard events generated last round, then
		// pick the next window from the post-delivery global minimum.
		for _, fn := range ss.barriers {
			fn()
		}
		base := MaxTime
		for _, s := range ss.sims {
			if t, ok := s.PeekTime(); ok && t < base {
				base = t
			}
		}
		if base == MaxTime || base > until {
			// Done inside the horizon. Mirror the single-engine contract:
			// clocks advance to until (never past a pending event).
			if until != MaxTime {
				for _, s := range ss.sims {
					s.AdvanceTo(until)
				}
			}
			return ss.Now(), nil
		}
		end := until
		if ss.Lookahead == 0 {
			// Zero lookahead (a zero-delay cross-shard link exists):
			// lockstep on the minimum time. Progress is still guaranteed —
			// at least the shard holding `base` fires — so same-latency
			// partitions are slow, never deadlocked.
			end = base
		} else if ss.Lookahead < MaxTime-base {
			if w := base + ss.Lookahead - 1; w < end {
				end = w
			}
		}
		if err := ss.round(end, work, done); err != nil {
			return ss.Now(), err
		}
	}
}

// RunAll executes rounds until every shard's queue is empty.
func (ss *Sharded) RunAll() (Time, error) { return ss.Run(MaxTime) }

// round runs every shard to the window horizon and reports the first
// error in shard order (deterministic regardless of which worker hit it).
func (ss *Sharded) round(end Time, work chan int, done chan struct{}) error {
	ss.roundEnd = end
	if work == nil {
		for i, s := range ss.sims {
			_, ss.errs[i] = s.Run(end)
		}
	} else {
		for i := range ss.sims {
			work <- i
		}
		for range ss.sims {
			<-done
		}
	}
	var first error
	for i, err := range ss.errs {
		if err != nil && first == nil {
			first = err
		}
		ss.errs[i] = nil
	}
	return first
}
