package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (PCG-XSH-RR 64/32, O'Neill 2014). It is not safe for concurrent use;
// each Simulation owns exactly one and all randomness must flow through it
// so runs are reproducible from the seed alone.
type RNG struct {
	state uint64
	inc   uint64
	seed  uint64 // the seed NewRNG was called with; Substream derives from it
}

const pcgMult = 6364136223846793005

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1, seed: seed}
	r.state = 0
	r.Uint32()
	r.state += seed
	r.Uint32()
	return r
}

// Fork derives an independent generator from r's stream. Used to give each
// traffic source its own stream so adding a source does not perturb others.
func (r *RNG) Fork() *RNG {
	return NewRNG(uint64(r.Uint32())<<32 | uint64(r.Uint32()))
}

// splitmix64 is the SplitMix64 finalizer (Steele et al. 2014): a bijective
// mixer whose outputs over sequential inputs pass statistical tests, making
// it the standard way to derive independent seeds from a counter.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Substream returns the i-th derived generator of r's seed. Unlike Fork,
// the derivation depends only on the seed r was constructed with — not on
// how much of r's stream has been consumed — so Substream(i) is identical
// no matter when or where it is called. The parallel sweep runner gives
// point i Substream(i), which is what makes sweep results byte-identical
// at any worker count and any execution order.
func (r *RNG) Substream(i uint64) *RNG {
	v := r.SubstreamValue(i)
	return &v
}

// SubstreamValue is Substream returning the generator by value, for
// callers that derive many short-lived substreams (the hybrid boundary
// arming loop derives one per injector) and want them stack-allocated.
// The stream is identical to Substream(i)'s.
func (r *RNG) SubstreamValue(i uint64) RNG {
	seed := splitmix64(r.seed ^ splitmix64(i))
	v := RNG{inc: (seed << 1) | 1, seed: seed}
	v.Uint32()
	v.state += seed
	v.Uint32()
	return v
}

// Uint32 returns the next 32 random bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := uint64(r.Uint32())
	m := v * uint64(n)
	lo := uint32(m)
	if lo < uint32(n) {
		thresh := uint32(-uint32(n)) % uint32(n)
		for lo < thresh {
			v = uint64(r.Uint32())
			m = v * uint64(n)
			lo = uint32(m)
		}
	}
	return int(m >> 32)
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes a slice of ints in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given mean.
// Used for Poisson inter-arrival times of legitimate traffic.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto-distributed value with scale xm and shape alpha.
// Heavy-tailed flow sizes in the legitimate traffic mix use this.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Normal returns a normally distributed value via Box–Muller.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}
