package sim

import (
	"strings"
	"testing"
)

func TestPeekTime(t *testing.T) {
	s := New(1)
	if _, ok := s.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue reported an event")
	}
	s.AfterFunc(5*Millisecond, func(Time) {})
	s.AfterFunc(2*Millisecond, func(Time) {})
	if at, ok := s.PeekTime(); !ok || at != 2*Millisecond {
		t.Fatalf("PeekTime = %v, %v; want 2ms, true", at, ok)
	}
	// Lazily-cancelled head events must not be reported.
	h := s.At(1*Millisecond, EventFunc(func(Time) {}))
	s.Cancel(h)
	if at, _ := s.PeekTime(); at != 2*Millisecond {
		t.Fatalf("PeekTime saw cancelled event: %v", at)
	}
}

func TestAdvanceTo(t *testing.T) {
	s := New(1)
	s.AdvanceTo(3 * Millisecond)
	if s.Now() != 3*Millisecond {
		t.Fatalf("Now = %v after AdvanceTo(3ms)", s.Now())
	}
	s.AdvanceTo(1 * Millisecond) // backwards: no-op
	if s.Now() != 3*Millisecond {
		t.Fatalf("AdvanceTo moved the clock backwards to %v", s.Now())
	}
	s.AfterFunc(Millisecond, func(Time) {})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("AdvanceTo past a pending event did not panic")
		}
	}()
	s.AdvanceTo(10 * Millisecond)
}

// relayMsg is one in-flight token of the test model: deliver at `at`,
// then keep relaying for `ttl` more hops.
type relayMsg struct {
	at  Time
	ttl int
}

// shardedHarness is a minimal sharded model obeying the same discipline as
// the real network: each shard writes only its own outbox row during a
// round (so rounds stay lock-free), the barrier drains rows in fixed
// (destination, source) order, and every delivery is recorded on the
// destination shard's own trace. Messages are stamped now+delay, so
// Lookahead <= delay satisfies the conservative contract.
type shardedHarness struct {
	ss     *Sharded
	delay  Time
	outbox [][][]relayMsg // [src][dst] -> pending messages
	traces [][]Time       // per-shard delivery times, in firing order
}

func newShardedHarness(ss *Sharded, delay Time) *shardedHarness {
	n := ss.Shards()
	h := &shardedHarness{ss: ss, delay: delay, traces: make([][]Time, n)}
	h.outbox = make([][][]relayMsg, n)
	for i := range h.outbox {
		h.outbox[i] = make([][]relayMsg, n)
	}
	ss.OnBarrier(h.drain)
	return h
}

func (h *shardedHarness) send(from int, now Time, ttl int) {
	dst := (from + 1) % h.ss.Shards()
	h.outbox[from][dst] = append(h.outbox[from][dst], relayMsg{at: now + h.delay, ttl: ttl})
}

func (h *shardedHarness) drain() {
	for dst := range h.outbox {
		dst := dst
		for src := range h.outbox {
			for _, m := range h.outbox[src][dst] {
				m := m
				h.ss.Shard(dst).At(m.at, EventFunc(func(now Time) {
					h.traces[dst] = append(h.traces[dst], now)
					if m.ttl > 0 {
						h.send(dst, now, m.ttl-1)
					}
				}))
			}
			h.outbox[src][dst] = h.outbox[src][dst][:0]
		}
	}
}

func (h *shardedHarness) deliveries() int {
	n := 0
	for _, tr := range h.traces {
		n += len(tr)
	}
	return n
}

func TestShardedCrossShardRelay(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ss := NewSharded(1, 2)
		ss.Workers = workers
		ss.Lookahead = 5 * Millisecond
		h := newShardedHarness(ss, 5*Millisecond)
		ss.Shard(0).At(0, EventFunc(func(now Time) { h.send(0, now, 9) }))
		if _, err := ss.RunAll(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if h.deliveries() != 10 {
			t.Fatalf("workers=%d: %d deliveries, want 10", workers, h.deliveries())
		}
		// Kickoff event + 10 relay deliveries, regardless of worker count.
		if ss.Fired() != 11 {
			t.Fatalf("workers=%d: Fired = %d, want 11", workers, ss.Fired())
		}
		// The 10th hop lands on shard 0 (even hops return home) at 50ms.
		if tr := h.traces[0]; tr[len(tr)-1] != 10*5*Millisecond {
			t.Fatalf("workers=%d: last delivery at %v, want 50ms", workers, tr[len(tr)-1])
		}
	}
}

func TestShardedZeroLookaheadProgress(t *testing.T) {
	// Lookahead 0 is the conservative fallback: lockstep rounds on the
	// global minimum. The relay must still complete — slowly, never stuck.
	ss := NewSharded(1, 3)
	h := newShardedHarness(ss, Millisecond)
	ss.Shard(0).At(0, EventFunc(func(now Time) { h.send(0, now, 24) }))
	if _, err := ss.RunAll(); err != nil {
		t.Fatal(err)
	}
	if h.deliveries() != 25 {
		t.Fatalf("%d deliveries, want 25", h.deliveries())
	}
}

func TestShardedZeroDelayCycleHitsEventLimit(t *testing.T) {
	// A zero-delay cross-shard cycle can never advance time; the per-shard
	// event limit must stop it with ErrEventLimit rather than spin.
	ss := NewSharded(1, 2)
	h := newShardedHarness(ss, 0)
	ss.SetEventLimit(100)
	ss.Shard(0).At(0, EventFunc(func(now Time) { h.send(0, now, 1<<30) }))
	_, err := ss.RunAll()
	if !IsEventLimit(err) {
		t.Fatalf("err = %v, want event-limit", err)
	}
}

func TestShardedPerShardError(t *testing.T) {
	ss := NewSharded(1, 4)
	ss.Lookahead = Millisecond
	for i := 0; i < 4; i++ {
		ss.Shard(i).At(Millisecond, EventFunc(func(Time) {}))
	}
	ss.Shard(1).EventLimit = 1
	ss.Shard(1).At(2*Millisecond, EventFunc(func(Time) {}))
	_, err := ss.RunAll()
	if !IsEventLimit(err) {
		t.Fatalf("err = %v, want shard 1's event-limit", err)
	}
}

func TestShardedRunAdvancesIdleClocks(t *testing.T) {
	ss := NewSharded(1, 2)
	ss.Lookahead = Millisecond
	ss.Shard(0).At(Millisecond, EventFunc(func(Time) {}))
	until := 50 * Millisecond
	if _, err := ss.Run(until); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if now := ss.Shard(i).Now(); now != until {
			t.Fatalf("shard %d clock = %v, want %v (single-engine Run contract)", i, now, until)
		}
	}
}

func TestShardedDeterminism(t *testing.T) {
	run := func(workers int) [][]Time {
		ss := NewSharded(7, 3)
		ss.Workers = workers
		ss.Lookahead = 2 * Millisecond
		h := newShardedHarness(ss, 2*Millisecond)
		// Two concurrent relay tokens plus shard-local chatter.
		ss.Shard(0).At(0, EventFunc(func(now Time) { h.send(0, now, 19) }))
		ss.Shard(1).At(Millisecond, EventFunc(func(now Time) { h.send(1, now, 19) }))
		for i := 0; i < 3; i++ {
			ss.Shard(i).AfterFunc(500*Microsecond, func(Time) {})
		}
		if _, err := ss.RunAll(); err != nil {
			t.Fatal(err)
		}
		return h.traces
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for s := range got {
			if len(got[s]) != len(base[s]) {
				t.Fatalf("workers=%d shard %d: %d deliveries vs %d", workers, s, len(got[s]), len(base[s]))
			}
			for i := range got[s] {
				if got[s][i] != base[s][i] {
					t.Fatalf("workers=%d shard %d: delivery %d at %v, want %v", workers, s, i, got[s][i], base[s][i])
				}
			}
		}
	}
}

func TestShardedLookaheadViolationPanics(t *testing.T) {
	// Claiming a window wider than the true cross-shard latency is a
	// contract violation; it must be caught (At into the past panics), not
	// silently reorder events.
	ss := NewSharded(1, 2)
	ss.Lookahead = 100 * Millisecond // model's real latency is 1ms
	h := newShardedHarness(ss, Millisecond)
	ss.Shard(0).At(0, EventFunc(func(now Time) { h.send(0, now, 9) }))
	// Give the victim shard work deep inside the (bogus) window so its
	// clock outruns the late delivery.
	ss.Shard(1).At(50*Millisecond, EventFunc(func(Time) {}))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("late cross-shard delivery did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "before now") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	_, _ = ss.RunAll()
}
