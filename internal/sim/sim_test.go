package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.AfterFunc(30*Millisecond, func(Time) { got = append(got, 3) })
	s.AfterFunc(10*Millisecond, func(Time) { got = append(got, 1) })
	s.AfterFunc(20*Millisecond, func(Time) { got = append(got, 2) })
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.AfterFunc(5*Millisecond, func(Time) { got = append(got, i) })
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events fired out of scheduling order at %d: %v", i, got[:i+1])
		}
	}
}

func TestNowAdvances(t *testing.T) {
	s := New(1)
	var at Time
	s.AfterFunc(7*Second, func(now Time) { at = now })
	end, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if at != 7*Second {
		t.Errorf("event saw now=%v, want 7s", at)
	}
	if end != 7*Second {
		t.Errorf("RunAll returned %v, want 7s", end)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := New(1)
	fired := 0
	s.AfterFunc(1*Second, func(Time) { fired++ })
	s.AfterFunc(3*Second, func(Time) { fired++ })
	end, err := s.Run(2 * Second)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if end != 2*Second {
		t.Errorf("end = %v, want 2s", end)
	}
	// The remaining event still fires on a later Run.
	if _, err := s.Run(4 * Second); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("after second run fired = %d, want 2", fired)
	}
}

func TestEventAtDeadlineFires(t *testing.T) {
	s := New(1)
	fired := false
	s.AfterFunc(2*Second, func(Time) { fired = true })
	if _, err := s.Run(2 * Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event scheduled exactly at deadline did not fire")
	}
}

func TestSchedulingDuringEvent(t *testing.T) {
	s := New(1)
	var order []string
	s.AfterFunc(1*Second, func(now Time) {
		order = append(order, "a")
		s.AfterFunc(1*Second, func(Time) { order = append(order, "c") })
	})
	s.AfterFunc(1500*Millisecond, func(Time) { order = append(order, "b") })
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v, want [a b c]", order)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	h := s.AfterFunc(1*Second, func(Time) { fired = true })
	s.Cancel(h)
	if !h.Cancelled() {
		t.Error("handle not marked cancelled")
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	s.Cancel(h) // double cancel is a no-op
}

func TestCancelOneOfMany(t *testing.T) {
	s := New(1)
	var got []int
	var handles []Handle
	for i := 0; i < 10; i++ {
		i := i
		handles = append(handles, s.AfterFunc(Time(i+1)*Millisecond, func(Time) { got = append(got, i) }))
	}
	s.Cancel(handles[4])
	s.Cancel(handles[7])
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8", len(got))
	}
	for _, v := range got {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.AfterFunc(Time(i)*Second, func(Time) {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3 (Stop should halt the loop)", count)
	}
	if s.Pending() != 7 {
		t.Errorf("pending = %d, want 7", s.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.AfterFunc(5*Second, func(Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(1*Second, EventFunc(func(Time) {}))
	})
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	New(1).After(-1, EventFunc(func(Time) {}))
}

func TestEventLimit(t *testing.T) {
	s := New(1)
	s.EventLimit = 10
	var tick func(now Time)
	tick = func(now Time) { s.AfterFunc(Millisecond, tick) }
	s.AfterFunc(Millisecond, tick)
	_, err := s.RunAll()
	if err == nil {
		t.Fatal("expected event-limit error for unbounded self-scheduling")
	}
	if !IsEventLimit(err) {
		t.Fatalf("err = %v, want event-limit error", err)
	}
}

// Reaching the event limit must not drop the pending event: it stays
// queued, and raising the limit resumes exactly where the run stopped.
func TestEventLimitKeepsPendingEvent(t *testing.T) {
	s := New(1)
	s.EventLimit = 2
	var got []int
	for i := 0; i < 3; i++ {
		i := i
		s.AfterFunc(Time(i+1)*Millisecond, func(Time) { got = append(got, i) })
	}
	if _, err := s.RunAll(); !IsEventLimit(err) {
		t.Fatalf("err = %v, want event-limit error", err)
	}
	if len(got) != 2 || s.Fired() != 2 {
		t.Fatalf("fired %v (Fired=%d), want exactly the first 2 events", got, s.Fired())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want the limited event still queued", s.Pending())
	}
	s.EventLimit = 0
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 2 {
		t.Fatalf("resumed run fired %v, want the third event", got)
	}
}

// Step must enforce the same limit semantics as Run: error before popping,
// event retained.
func TestStepEventLimit(t *testing.T) {
	s := New(1)
	s.EventLimit = 1
	fired := 0
	s.AfterFunc(Millisecond, func(Time) { fired++ })
	s.AfterFunc(2*Millisecond, func(Time) { fired++ })
	ok, err := s.Step()
	if !ok || err != nil {
		t.Fatalf("first Step = %v, %v", ok, err)
	}
	ok, err = s.Step()
	if ok || !IsEventLimit(err) {
		t.Fatalf("second Step = %v, %v, want event-limit error", ok, err)
	}
	if fired != 1 || s.Pending() != 1 {
		t.Fatalf("fired = %d pending = %d, want 1/1 (event retained)", fired, s.Pending())
	}
	s.EventLimit = 0
	if ok, err := s.Step(); !ok || err != nil {
		t.Fatalf("Step after raising limit = %v, %v", ok, err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// Step resets the stop flag on entry, exactly like Run: a stale Stop from
// a previous run or from outside a run does not suppress stepping.
func TestStepResetsStopFlag(t *testing.T) {
	s := New(1)
	fired := 0
	s.AfterFunc(Millisecond, func(Time) { fired++ })
	s.Stop()
	ok, err := s.Step()
	if !ok || err != nil || fired != 1 {
		t.Fatalf("Step after Stop = %v, %v (fired=%d), want it to fire", ok, err, fired)
	}
}

// Step must skip lazily-cancelled events rather than firing or counting
// them.
func TestStepSkipsCancelled(t *testing.T) {
	s := New(1)
	fired := 0
	h := s.AfterFunc(Millisecond, func(Time) { t.Error("cancelled event fired") })
	s.AfterFunc(2*Millisecond, func(Time) { fired++ })
	s.Cancel(h)
	ok, err := s.Step()
	if !ok || err != nil || fired != 1 {
		t.Fatalf("Step = %v, %v (fired=%d), want the live event to fire", ok, err, fired)
	}
	if s.Fired() != 1 {
		t.Fatalf("Fired = %d, cancelled event must not count", s.Fired())
	}
}

// Handles must read as Cancelled once their event fires, even after the
// internal slot is recycled by later scheduling.
func TestHandleInvalidAfterFire(t *testing.T) {
	s := New(1)
	h := s.AfterFunc(Millisecond, func(Time) {})
	if h.Cancelled() {
		t.Fatal("fresh handle reads cancelled")
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !h.Cancelled() {
		t.Fatal("handle still live after event fired")
	}
	// Recycle the slot; the stale handle must stay dead and cancelling it
	// must not kill the new event.
	fired := false
	s.AfterFunc(Millisecond, func(Time) { fired = true })
	if !h.Cancelled() {
		t.Fatal("stale handle revived by slot reuse")
	}
	s.Cancel(h)
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("cancelling a stale handle killed an unrelated event")
	}
}

// The AfterFunc+Run steady state must not allocate: scheduling reuses
// queue capacity and liveness slots, and firing pops by value.
func TestSteadyStateZeroAllocs(t *testing.T) {
	s := New(1)
	fn := func(Time) {}
	for i := 0; i < 64; i++ {
		s.AfterFunc(Time(i)*Microsecond, fn)
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		s.AfterFunc(Microsecond, fn)
		s.AfterFunc(2*Microsecond, fn)
		if _, err := s.RunAll(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("AfterFunc+Run steady state allocates %v per op, want 0", avg)
	}
}

func TestStep(t *testing.T) {
	s := New(1)
	fired := 0
	s.AfterFunc(Millisecond, func(Time) { fired++ })
	s.AfterFunc(2*Millisecond, func(Time) { fired++ })
	ok, err := s.Step()
	if err != nil || !ok {
		t.Fatalf("Step = %v, %v", ok, err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d after one step", fired)
	}
	if s.Now() != Millisecond {
		t.Fatalf("now = %v, want 1ms", s.Now())
	}
	ok, _ = s.Step()
	if !ok || fired != 2 {
		t.Fatal("second step did not fire second event")
	}
	ok, _ = s.Step()
	if ok {
		t.Fatal("Step reported firing with empty queue")
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	var times []Time
	tk := s.NewTicker(10*Millisecond, func(now Time) {
		times = append(times, now)
		if len(times) == 5 {
			// Stop from within the callback.
		}
	})
	s.AfterFunc(55*Millisecond, func(Time) { tk.Stop() })
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 5 {
		t.Fatalf("ticker fired %d times, want 5", len(times))
	}
	for i, tm := range times {
		if want := Time(i+1) * 10 * Millisecond; tm != want {
			t.Errorf("tick %d at %v, want %v", i, tm, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = s.NewTicker(Millisecond, func(Time) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("ticker fired %d times after in-callback Stop, want 3", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed uint64) []uint64 {
		s := New(seed)
		var vals []uint64
		for i := 0; i < 50; i++ {
			d := Time(s.RNG().Intn(1000)) * Microsecond
			s.AfterFunc(d, func(now Time) { vals = append(vals, uint64(now)^s.RNG().Uint64()) })
		}
		if _, err := s.RunAll(); err != nil {
			t.Fatal(err)
		}
		return vals
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same && len(a) == len(c) {
		t.Error("different seeds produced identical runs")
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.5s" {
		t.Errorf("String = %q, want 1.5s", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds = %v, want 2", got)
	}
}

func TestRunAllAdvancesToLastEvent(t *testing.T) {
	s := New(1)
	s.AfterFunc(3*Second, func(Time) {})
	end, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if end != 3*Second {
		t.Errorf("end = %v, want 3s", end)
	}
}

// Property: events always fire in non-decreasing time order regardless of the
// order they were scheduled in.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		var fired []Time
		for _, d := range delays {
			s.AfterFunc(Time(d)*Microsecond, func(now Time) { fired = append(fired, now) })
		}
		if _, err := s.RunAll(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a subset of events fires exactly the complement.
func TestPropertyCancelComplement(t *testing.T) {
	f := func(delays []uint8, cancelMask []bool) bool {
		s := New(9)
		fired := make(map[int]bool)
		var handles []Handle
		for i, d := range delays {
			i := i
			handles = append(handles, s.AfterFunc(Time(d)*Microsecond, func(Time) { fired[i] = true }))
		}
		cancelled := make(map[int]bool)
		for i, h := range handles {
			if i < len(cancelMask) && cancelMask[i] {
				s.Cancel(h)
				cancelled[i] = true
			}
		}
		if _, err := s.RunAll(); err != nil {
			return false
		}
		for i := range delays {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
