// Package sim provides a deterministic discrete-event simulation engine.
//
// All experiments in this repository run on top of this engine. Determinism
// is a hard requirement: given the same seed and the same sequence of
// scheduled events, a simulation produces bit-identical results on every
// run. To guarantee this the engine
//
//   - orders events by (time, sequence number), so simultaneous events fire
//     in scheduling order,
//   - hands out random numbers only through the per-simulation *RNG*
//     (a seeded PCG; the math/rand global generator is never used), and
//   - never consults wall-clock time.
//
// The engine is intentionally single-threaded: network simulation at this
// scale is dominated by event-queue churn, and a lock-free sequential heap
// outruns a synchronized parallel queue for the event counts used here.
// Parallelism in the benchmark harness comes from running independent
// simulations (one per parameter point) on separate goroutines.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is simulated time measured in nanoseconds since simulation start.
// It mirrors time.Duration so callers can use duration literals naturally.
type Time int64

// Common simulated-time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time using time.Duration notation.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Fire runs when simulated time reaches the
// event's deadline.
type Event interface {
	Fire(now Time)
}

// EventFunc adapts a plain function to the Event interface.
type EventFunc func(now Time)

// Fire implements Event.
func (f EventFunc) Fire(now Time) { f(now) }

// item is a scheduled event inside the queue.
type item struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among simultaneous events
	ev    Event
	index int // heap index, -1 once popped or cancelled
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ it *item }

// Cancelled reports whether the event was cancelled or has already fired.
func (h Handle) Cancelled() bool { return h.it == nil || h.it.index < 0 }

// eventQueue is a binary heap of items ordered by (at, seq).
type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	it := x.(*item)
	it.index = len(*q)
	*q = append(*q, it)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*q = old[:n-1]
	return it
}

// Simulation owns the virtual clock, the event queue and the RNG.
// The zero value is not usable; construct with New.
type Simulation struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *RNG
	stopped bool
	fired   uint64

	// EventLimit, when non-zero, aborts Run with ErrEventLimit after that
	// many events have fired. It guards against accidental event storms in
	// property tests.
	EventLimit uint64
}

// New returns a simulation with its RNG seeded from seed.
func New(seed uint64) *Simulation {
	return &Simulation{rng: NewRNG(seed)}
}

// Now returns the current simulated time.
func (s *Simulation) Now() Time { return s.now }

// RNG returns the simulation's deterministic random source.
func (s *Simulation) RNG() *RNG { return s.rng }

// Pending returns the number of events waiting in the queue.
func (s *Simulation) Pending() int { return len(s.queue) }

// Fired returns the total number of events that have fired so far.
func (s *Simulation) Fired() uint64 { return s.fired }

// At schedules ev to fire at absolute time at. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Simulation) At(at Time, ev Event) Handle {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	it := &item{at: at, seq: s.seq, ev: ev}
	s.seq++
	heap.Push(&s.queue, it)
	return Handle{it}
}

// After schedules ev to fire d after the current time.
func (s *Simulation) After(d Time, ev Event) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, ev)
}

// AfterFunc schedules f to run d after the current time.
func (s *Simulation) AfterFunc(d Time, f func(now Time)) Handle {
	return s.After(d, EventFunc(f))
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Simulation) Cancel(h Handle) {
	if h.it == nil || h.it.index < 0 {
		return
	}
	heap.Remove(&s.queue, h.it.index)
	h.it.index = -1
	h.it.ev = nil
}

// Stop halts the run loop after the current event returns.
func (s *Simulation) Stop() { s.stopped = true }

// ErrEventLimit is returned by Run when EventLimit is exceeded.
type limitError struct{ limit uint64 }

func (e limitError) Error() string {
	return fmt.Sprintf("sim: event limit %d exceeded", e.limit)
}

// IsEventLimit reports whether err came from exceeding Simulation.EventLimit.
func IsEventLimit(err error) bool {
	_, ok := err.(limitError)
	return ok
}

// Run executes events in order until the queue empties, Stop is called, or
// simulated time would pass until. Events scheduled exactly at until still
// fire. It returns the time at which the run stopped.
func (s *Simulation) Run(until Time) (Time, error) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.at > until {
			s.now = until
			return s.now, nil
		}
		heap.Pop(&s.queue)
		s.now = next.at
		ev := next.ev
		next.ev = nil
		s.fired++
		if s.EventLimit != 0 && s.fired > s.EventLimit {
			return s.now, limitError{s.EventLimit}
		}
		ev.Fire(s.now)
	}
	if len(s.queue) == 0 && s.now < until && until != MaxTime && !s.stopped {
		s.now = until
	}
	return s.now, nil
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Simulation) RunAll() (Time, error) { return s.Run(MaxTime) }

// Step fires exactly one event if any is pending and reports whether it did.
func (s *Simulation) Step() (bool, error) {
	if len(s.queue) == 0 {
		return false, nil
	}
	next := heap.Pop(&s.queue).(*item)
	s.now = next.at
	s.fired++
	if s.EventLimit != 0 && s.fired > s.EventLimit {
		return false, limitError{s.EventLimit}
	}
	next.ev.Fire(s.now)
	return true, nil
}

// Ticker repeatedly invokes a function at a fixed period until cancelled.
type Ticker struct {
	sim    *Simulation
	period Time
	fn     func(now Time)
	handle Handle
	done   bool
}

// NewTicker schedules fn every period, first firing one period from now.
func (s *Simulation) NewTicker(period Time, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.handle = s.AfterFunc(period, t.tick)
	return t
}

func (t *Ticker) tick(now Time) {
	if t.done {
		return
	}
	t.fn(now)
	if !t.done {
		t.handle = t.sim.AfterFunc(t.period, t.tick)
	}
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.done = true
	t.sim.Cancel(t.handle)
}
