// Package sim provides a deterministic discrete-event simulation engine.
//
// All experiments in this repository run on top of this engine. Determinism
// is a hard requirement: given the same seed and the same sequence of
// scheduled events, a simulation produces bit-identical results on every
// run. To guarantee this the engine
//
//   - orders events by (time, sequence number), so simultaneous events fire
//     in scheduling order,
//   - hands out random numbers only through the per-simulation *RNG*
//     (a seeded PCG; the math/rand global generator is never used), and
//   - never consults wall-clock time.
//
// The engine is intentionally single-threaded: network simulation at this
// scale is dominated by event-queue churn, and a lock-free sequential heap
// outruns a synchronized parallel queue for the event counts used here.
// Parallelism in the benchmark harness comes from running independent
// simulations (one per parameter point) on separate goroutines.
//
// The queue is a hand-inlined 4-ary heap of value-type entries: scheduling
// an event moves a small fixed-size struct, never allocates, and popping
// touches at most one cache line of children per level. Cancellation is lazy — Cancel
// marks the event's slot dead and the entry is discarded when it reaches
// the top of the heap — so Handle stays a value and the heap never needs
// random removal.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is simulated time measured in nanoseconds since simulation start.
// It mirrors time.Duration so callers can use duration literals naturally.
type Time int64

// Common simulated-time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time using time.Duration notation.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Fire runs when simulated time reaches the
// event's deadline.
type Event interface {
	Fire(now Time)
}

// EventFunc adapts a plain function to the Event interface.
type EventFunc func(now Time)

// Fire implements Event.
func (f EventFunc) Fire(now Time) { f(now) }

// heapArity is the fan-out of the event heap. Four children per node gives
// shallower trees than a binary heap and keeps all children of a node in
// one or two cache lines, which wins on the push-heavy workloads here.
const heapArity = 4

// entry is one scheduled event, stored by value inside the heap. Pushes and
// pops move entries; nothing is allocated per event.
type entry struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	slot int32  // index into Simulation.slots for cancellation state
	ev   Event
}

// less orders entries by (at, seq).
func (e *entry) less(f *entry) bool {
	if e.at != f.at {
		return e.at < f.at
	}
	return e.seq < f.seq
}

// slotRec tracks liveness of one scheduled event. Slots are recycled
// through a free list; gen increments on every recycle so stale Handles
// referring to a reused slot read as already fired.
type slotRec struct {
	gen       uint64
	cancelled bool
}

// Handle identifies a scheduled event so it can be cancelled. It is a pure
// value (simulation, slot, generation); the zero Handle reports Cancelled.
type Handle struct {
	s    *Simulation
	slot int32
	gen  uint64
}

// Cancelled reports whether the event was cancelled or has already fired.
func (h Handle) Cancelled() bool {
	if h.s == nil || int(h.slot) >= len(h.s.slots) {
		return true
	}
	rec := &h.s.slots[h.slot]
	return rec.gen != h.gen || rec.cancelled
}

// Simulation owns the virtual clock, the event queue and the RNG.
// The zero value is not usable; construct with New.
type Simulation struct {
	now     Time
	seq     uint64
	queue   []entry   // 4-ary heap ordered by (at, seq)
	slots   []slotRec // liveness per scheduled event
	free    []int32   // recycled slot indices
	live    int       // scheduled, not yet fired or cancelled
	rng     *RNG
	stopped bool
	fired   uint64

	// EventLimit, when non-zero, makes Run and Step return ErrEventLimit
	// once that many events have fired, before popping the next event —
	// the pending event stays queued, so raising the limit and resuming
	// loses nothing. It guards against accidental event storms in
	// property tests.
	EventLimit uint64
}

// New returns a simulation with its RNG seeded from seed.
func New(seed uint64) *Simulation {
	return &Simulation{rng: NewRNG(seed)}
}

// Now returns the current simulated time.
func (s *Simulation) Now() Time { return s.now }

// RNG returns the simulation's deterministic random source.
func (s *Simulation) RNG() *RNG { return s.rng }

// Pending returns the number of events waiting in the queue (cancelled
// events are excluded even if not yet discarded from the heap).
func (s *Simulation) Pending() int { return s.live }

// Fired returns the total number of events that have fired so far.
func (s *Simulation) Fired() uint64 { return s.fired }

// allocSlot returns a free liveness slot, reusing dead ones.
func (s *Simulation) allocSlot() int32 {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		s.slots[id].cancelled = false
		return id
	}
	s.slots = append(s.slots, slotRec{})
	return int32(len(s.slots) - 1)
}

// freeSlot retires a slot once its entry leaves the heap. Bumping gen
// invalidates every Handle that still points at the slot.
func (s *Simulation) freeSlot(id int32) {
	s.slots[id].gen++
	s.free = append(s.free, id)
}

// push inserts e, bubbling the hole up from the tail.
func (s *Simulation) push(e entry) {
	q := append(s.queue, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !e.less(&q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
	s.queue = q
}

// popTop removes the root entry, frees its slot, and restores heap order
// with a single sift-down of the former tail entry.
func (s *Simulation) popTop() {
	q := s.queue
	s.freeSlot(q[0].slot)
	n := len(q) - 1
	last := q[n]
	q[n] = entry{} // release the Event reference
	q = q[:n]
	s.queue = q
	if n == 0 {
		return
	}
	i := 0
	for {
		c := i*heapArity + 1
		if c >= n {
			break
		}
		m := c
		end := c + heapArity
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if q[j].less(&q[m]) {
				m = j
			}
		}
		if !q[m].less(&last) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = last
}

// At schedules ev to fire at absolute time at. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Simulation) At(at Time, ev Event) Handle {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	slot := s.allocSlot()
	gen := s.slots[slot].gen
	s.push(entry{at: at, seq: s.seq, slot: slot, ev: ev})
	s.seq++
	s.live++
	return Handle{s: s, slot: slot, gen: gen}
}

// After schedules ev to fire d after the current time.
func (s *Simulation) After(d Time, ev Event) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, ev)
}

// AfterFunc schedules f to run d after the current time.
func (s *Simulation) AfterFunc(d Time, f func(now Time)) Handle {
	return s.After(d, EventFunc(f))
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancellation is lazy: the entry (and
// its Event reference) is discarded when it reaches the top of the heap.
func (s *Simulation) Cancel(h Handle) {
	if h.s == nil || int(h.slot) >= len(h.s.slots) {
		return
	}
	rec := &h.s.slots[h.slot]
	if rec.gen != h.gen || rec.cancelled {
		return
	}
	rec.cancelled = true
	h.s.live--
}

// Stop halts the run loop after the current event returns.
func (s *Simulation) Stop() { s.stopped = true }

// ErrEventLimit is returned by Run when EventLimit is exceeded.
type limitError struct{ limit uint64 }

func (e limitError) Error() string {
	return fmt.Sprintf("sim: event limit %d exceeded", e.limit)
}

// IsEventLimit reports whether err came from exceeding Simulation.EventLimit.
func IsEventLimit(err error) bool {
	_, ok := err.(limitError)
	return ok
}

// next discards cancelled entries and returns a pointer to the live root
// entry, or nil if the queue is empty.
func (s *Simulation) next() *entry {
	for len(s.queue) > 0 {
		top := &s.queue[0]
		if !s.slots[top.slot].cancelled {
			return top
		}
		s.popTop()
	}
	return nil
}

// fire pops the live root entry and runs it.
func (s *Simulation) fire(top *entry) {
	at, ev := top.at, top.ev
	s.popTop()
	s.now = at
	s.live--
	s.fired++
	ev.Fire(s.now)
}

// PeekTime returns the deadline of the next live event without firing it.
// ok is false when the queue holds no live events. Cancelled entries
// encountered on the way to the root are discarded, so repeated peeks stay
// O(1) amortized. The sharded coordinator uses this to compute each
// barrier round's conservative window base.
func (s *Simulation) PeekTime() (Time, bool) {
	if top := s.next(); top != nil {
		return top.at, true
	}
	return 0, false
}

// AdvanceTo moves the clock forward to at without firing anything. It is a
// no-op when at <= now and panics if a live event would be skipped —
// the sharded coordinator uses it to keep idle shards' clocks aligned with
// the barrier window so later deliveries never schedule into their past.
func (s *Simulation) AdvanceTo(at Time) {
	if at <= s.now {
		return
	}
	if top := s.next(); top != nil && top.at < at {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) would skip event at %v", at, top.at))
	}
	s.now = at
}

// Run executes events in order until the queue empties, Stop is called, or
// simulated time would pass until. Events scheduled exactly at until still
// fire. It returns the time at which the run stopped.
//
// When EventLimit is reached the pending event is left in the queue and
// ErrEventLimit is returned; no event is ever silently dropped.
func (s *Simulation) Run(until Time) (Time, error) {
	s.stopped = false
	for !s.stopped {
		top := s.next()
		if top == nil {
			break
		}
		if top.at > until {
			s.now = until
			return s.now, nil
		}
		if s.EventLimit != 0 && s.fired >= s.EventLimit {
			return s.now, limitError{s.EventLimit}
		}
		s.fire(top)
	}
	if s.live == 0 && s.now < until && until != MaxTime && !s.stopped {
		s.now = until
	}
	return s.now, nil
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Simulation) RunAll() (Time, error) { return s.Run(MaxTime) }

// Step fires exactly one event if any is pending and reports whether it
// did. Its limit-and-stop semantics match Run: the stop flag is reset on
// entry, and reaching EventLimit returns ErrEventLimit with the pending
// event still queued.
func (s *Simulation) Step() (bool, error) {
	s.stopped = false
	top := s.next()
	if top == nil {
		return false, nil
	}
	if s.EventLimit != 0 && s.fired >= s.EventLimit {
		return false, limitError{s.EventLimit}
	}
	s.fire(top)
	return true, nil
}

// Ticker repeatedly invokes a function at a fixed period until cancelled.
type Ticker struct {
	sim    *Simulation
	period Time
	fn     func(now Time)
	handle Handle
	done   bool
}

// NewTicker schedules fn every period, first firing one period from now.
func (s *Simulation) NewTicker(period Time, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.handle = s.AfterFunc(period, t.tick)
	return t
}

func (t *Ticker) tick(now Time) {
	if t.done {
		return
	}
	t.fn(now)
	if !t.done {
		t.handle = t.sim.AfterFunc(t.period, t.tick)
	}
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.done = true
	t.sim.Cancel(t.handle)
}
