package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Error("zero value not zero")
	}
	c.Inc()
	c.Add(10)
	if c.Value() != 11 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Sum() != 15 {
		t.Errorf("Sum = %v", s.Sum())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Stddev(); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Errorf("Stddev = %v", got)
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	for _, v := range []float64{s.Mean(), s.Min(), s.Max(), s.Stddev(), s.Percentile(50)} {
		if !math.IsNaN(v) {
			t.Errorf("empty-series stat = %v, want NaN", v)
		}
	}
}

func TestSeriesAddAfterPercentile(t *testing.T) {
	var s Series
	s.Add(5)
	s.Add(1)
	_ = s.Percentile(50) // sorts
	s.Add(3)
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 after re-add = %v", got)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestPercentileProperty(t *testing.T) {
	f := func(vals []float64, p uint8) bool {
		var s Series
		ok := false
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
				ok = true
			}
		}
		if !ok {
			return true
		}
		got := s.Percentile(float64(p % 101))
		return got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo table", "name", "value", "ratio")
	tb.AddRow("alpha", 1234.5678, 0.001234)
	tb.AddRow("b", 7, "n/a")
	s := tb.String()
	if !strings.Contains(s, "Demo table") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "n/a") {
		t.Error("missing cells")
	}
	if !strings.Contains(s, "1235") {
		t.Errorf("large float formatting: %s", s)
	}
	if !strings.Contains(s, "1.23e-03") {
		t.Errorf("small float formatting: %s", s)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("rendered %d lines:\n%s", len(lines), s)
	}
}

func TestTableNaNFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(math.NaN())
	if !strings.Contains(tb.String(), "-") {
		t.Error("NaN not rendered as dash")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored title", "name", "value")
	tb.AddRow("plain", 1.5)
	tb.AddRow("with,comma", `say "hi"`)
	got := tb.CSV()
	want := "name,value\nplain,1.500\n\"with,comma\",\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Errorf("CSV:\n got %q\nwant %q", got, want)
	}
	if strings.Contains(got, "ignored title") {
		t.Error("CSV must not contain the title")
	}
}
