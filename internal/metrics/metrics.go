// Package metrics provides the counters, time series and table formatting
// used by every experiment. Keeping measurement out of the simulator keeps
// the data path lean and makes the experiment outputs uniform.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a simple monotonically increasing counter. It is NOT safe for
// concurrent use: it belongs on single-threaded simulation paths. Anything
// shared between goroutines on the live-server paths must use AtomicCounter
// instead.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// AtomicCounter is a monotonically increasing counter safe for concurrent
// use — the live control plane's counterpart of Counter (telemetry queue
// drops, served requests, scrape counts).
type AtomicCounter struct {
	n atomic.Uint64
}

// Add increments the counter by d.
func (c *AtomicCounter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *AtomicCounter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *AtomicCounter) Value() uint64 { return c.n.Load() }

// StripedCounter is a monotonically increasing counter for heavily
// contended hot paths: increments land on one of several cache-line-padded
// stripes chosen by the caller-supplied key, so concurrent writers (e.g.
// sweep workers counting routing-cache hits) do not serialize on a single
// cache line the way AtomicCounter's do. Value folds the stripes.
type StripedCounter struct {
	stripes [8]struct {
		n atomic.Uint64
		_ [56]byte // pad to a cache line
	}
}

// Add increments the counter by d on the stripe selected by key (any
// value with reasonable spread, e.g. a destination node ID).
func (c *StripedCounter) Add(key int, d uint64) {
	c.stripes[uint(key)%uint(len(c.stripes))].n.Add(d)
}

// Inc increments the counter by one on the stripe selected by key.
func (c *StripedCounter) Inc(key int) { c.Add(key, 1) }

// Value returns the current count (sum over stripes).
func (c *StripedCounter) Value() uint64 {
	var t uint64
	for i := range c.stripes {
		t += c.stripes[i].n.Load()
	}
	return t
}

// Series accumulates scalar samples and answers summary-statistics queries.
type Series struct {
	vals   []float64
	sorted bool
}

// Add appends a sample.
func (s *Series) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.vals) }

// Sum returns the sum of samples.
func (s *Series) Sum() float64 {
	t := 0.0
	for _, v := range s.vals {
		t += v
	}
	return t
}

// Mean returns the sample mean, or NaN when empty.
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	return s.Sum() / float64(len(s.vals))
}

// Stddev returns the population standard deviation, or NaN when empty.
func (s *Series) Stddev() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.vals {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s.vals)))
}

// Min returns the smallest sample, or NaN when empty.
func (s *Series) Min() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample, or NaN when empty.
func (s *Series) Max() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) using nearest-rank, or
// NaN when empty.
func (s *Series) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s.vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.vals[rank]
}

// Table renders experiment results as an aligned text table — the format
// every experiment runner prints and EXPERIMENTS.md records.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	a := math.Abs(v)
	switch {
	case a != 0 && a < 0.01:
		return fmt.Sprintf("%.2e", v)
	case a < 10:
		return fmt.Sprintf("%.3f", v)
	case a < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted rows (shared).
func (t *Table) Rows() [][]string { return t.rows }

// CSV renders the table as RFC-4180 CSV (header row first, no title) for
// downstream plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
