package packet

import (
	"fmt"
)

// Proto identifies the transport-layer protocol of a packet, using the
// standard IP protocol numbers.
type Proto uint8

// Supported protocol numbers.
const (
	ICMP Proto = 1
	TCP  Proto = 6
	UDP  Proto = 17
)

// String implements fmt.Stringer.
func (p Proto) String() string {
	switch p {
	case ICMP:
		return "ICMP"
	case TCP:
		return "TCP"
	case UDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// TCP flag bits (subset used by attack and defense logic).
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// ICMP types used by protocol-misuse attacks and reflector replies.
const (
	ICMPEchoReply      uint8 = 0
	ICMPUnreachable    uint8 = 3
	ICMPEchoRequest    uint8 = 8
	ICMPTimeExceeded   uint8 = 11
	ICMPHostUnreachSub uint8 = 1 // code for host unreachable under type 3
)

// Kind labels a packet's role in an experiment so metrics can attribute
// delivered and dropped bytes to traffic classes. It is simulator metadata
// and is not part of the wire format.
type Kind uint8

// Traffic classes.
const (
	KindLegit   Kind = iota // legitimate client/server traffic
	KindAttack              // traffic emitted by attack agents
	KindReflect             // reflector replies triggered by attack traffic
	KindControl             // DDoS command & control (attacker -> master -> agent)
	KindService             // traffic-control service control plane
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLegit:
		return "legit"
	case KindAttack:
		return "attack"
	case KindReflect:
		return "reflect"
	case KindControl:
		return "control"
	case KindService:
		return "service"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// DefaultTTL is the initial TTL of generated packets.
const DefaultTTL = 64

// MinHeaderBytes is the serialized header size (IPv4 + transport subset).
const MinHeaderBytes = 28

// Packet is a simulated IPv4 packet. Fields mirror the subset of the IPv4
// and transport headers the system inspects; Size is the full on-wire size
// in bytes (headers + payload) and drives link transmission time, while
// Payload optionally carries real bytes for components that hash or scrub
// payloads.
//
// Simulator-only metadata (Kind, Origin, ID) lets experiments attribute
// traffic without embedding side tables; none of it is visible to filters,
// which see only what a real device could see.
type Packet struct {
	Src, Dst Addr
	Proto    Proto
	TTL      uint8

	// Transport header subset.
	SrcPort, DstPort uint16
	Flags            uint8 // TCP flags, or ICMP type for Proto==ICMP
	ICMPCode         uint8
	Seq              uint32 // TCP sequence number

	Size    int    // total on-wire bytes
	Payload []byte // optional payload bytes (len(Payload) <= Size)

	// Simulator metadata — invisible to packet-processing components.
	Kind   Kind
	Origin int    // node ID of the true originator (ground truth for traceback scoring)
	ID     uint64 // unique per-simulation packet ID
}

// Clone returns a deep copy of the packet (payload included). Reflectors
// and loggers use it so later in-place mutation cannot alias.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return &q
}

// FlowKey identifies a 5-tuple flow.
type FlowKey struct {
	Src, Dst Addr
	Proto    Proto
	SrcPort  uint16
	DstPort  uint16
}

// Flow returns the packet's 5-tuple.
func (p *Packet) Flow() FlowKey {
	return FlowKey{Src: p.Src, Dst: p.Dst, Proto: p.Proto, SrcPort: p.SrcPort, DstPort: p.DstPort}
}

// Reverse returns the flow key of reply traffic.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, Proto: k.Proto, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// String implements fmt.Stringer.
func (p *Packet) String() string {
	return fmt.Sprintf("%v %v:%d > %v:%d ttl=%d size=%d kind=%v",
		p.Proto, p.Src, p.SrcPort, p.Dst, p.DstPort, p.TTL, p.Size, p.Kind)
}

// Validate checks structural invariants that every packet in the simulator
// must satisfy. Device safety auditing calls this after each component.
func (p *Packet) Validate() error {
	if p.Size < MinHeaderBytes {
		return fmt.Errorf("packet: size %d below header minimum %d", p.Size, MinHeaderBytes)
	}
	if len(p.Payload) > p.Size-MinHeaderBytes {
		return fmt.Errorf("packet: payload %d bytes exceeds size %d - headers", len(p.Payload), p.Size)
	}
	return nil
}
