package packet

import (
	"encoding/binary"
	"fmt"
)

// Wire format: a fixed 28-byte header followed by the payload.
//
//	offset  field
//	0       src addr (4, big endian)
//	4       dst addr (4)
//	8       proto (1)
//	9       ttl (1)
//	10      flags / icmp type (1)
//	11      icmp code (1)
//	12      src port (2)
//	14      dst port (2)
//	16      seq (4)
//	20      total size (4)
//	24      payload length (4)
//	28      payload bytes
//
// The format is a stable, simulator-defined encoding (not RFC 791): it
// exists so traceback digests, logs and the control plane operate on real
// bytes, and so packets can cross process boundaries in the live demo.

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *Packet) MarshalBinary() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, MinHeaderBytes+len(p.Payload))
	binary.BigEndian.PutUint32(buf[0:], uint32(p.Src))
	binary.BigEndian.PutUint32(buf[4:], uint32(p.Dst))
	buf[8] = uint8(p.Proto)
	buf[9] = p.TTL
	buf[10] = p.Flags
	buf[11] = p.ICMPCode
	binary.BigEndian.PutUint16(buf[12:], p.SrcPort)
	binary.BigEndian.PutUint16(buf[14:], p.DstPort)
	binary.BigEndian.PutUint32(buf[16:], p.Seq)
	binary.BigEndian.PutUint32(buf[20:], uint32(p.Size))
	binary.BigEndian.PutUint32(buf[24:], uint32(len(p.Payload)))
	copy(buf[MinHeaderBytes:], p.Payload)
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *Packet) UnmarshalBinary(buf []byte) error {
	if len(buf) < MinHeaderBytes {
		return fmt.Errorf("packet: short buffer (%d bytes)", len(buf))
	}
	plen := binary.BigEndian.Uint32(buf[24:])
	if int(plen) != len(buf)-MinHeaderBytes {
		return fmt.Errorf("packet: payload length %d does not match buffer %d", plen, len(buf)-MinHeaderBytes)
	}
	p.Src = Addr(binary.BigEndian.Uint32(buf[0:]))
	p.Dst = Addr(binary.BigEndian.Uint32(buf[4:]))
	p.Proto = Proto(buf[8])
	p.TTL = buf[9]
	p.Flags = buf[10]
	p.ICMPCode = buf[11]
	p.SrcPort = binary.BigEndian.Uint16(buf[12:])
	p.DstPort = binary.BigEndian.Uint16(buf[14:])
	p.Seq = binary.BigEndian.Uint32(buf[16:])
	p.Size = int(binary.BigEndian.Uint32(buf[20:]))
	if plen > 0 {
		p.Payload = append(p.Payload[:0], buf[MinHeaderBytes:]...)
	} else {
		p.Payload = nil
	}
	return p.Validate()
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Digest returns a 64-bit hash over the hop-invariant parts of the packet:
// addresses, protocol, ports, flags, sequence number, size and up to the
// first 8 payload bytes. TTL is deliberately excluded — it changes at every
// hop, and SPIE-style traceback must recognize the same packet at different
// routers. Simulator metadata is likewise excluded.
func (p *Packet) Digest() uint64 {
	h := uint64(fnvOffset64)
	mix := func(v uint64, bytes int) {
		for i := 0; i < bytes; i++ {
			h ^= v & 0xff
			h *= fnvPrime64
			v >>= 8
		}
	}
	mix(uint64(p.Src), 4)
	mix(uint64(p.Dst), 4)
	mix(uint64(p.Proto), 1)
	mix(uint64(p.Flags), 1)
	mix(uint64(p.ICMPCode), 1)
	mix(uint64(p.SrcPort), 2)
	mix(uint64(p.DstPort), 2)
	mix(uint64(p.Seq), 4)
	mix(uint64(p.Size), 4)
	n := len(p.Payload)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		h ^= uint64(p.Payload[i])
		h *= fnvPrime64
	}
	return h
}

// DigestWithSalt mixes a router-specific salt into the digest so each
// traceback Bloom filter uses independent hash functions, as in SPIE.
func (p *Packet) DigestWithSalt(salt uint64) uint64 {
	h := p.Digest()
	h ^= salt
	h *= fnvPrime64
	h ^= h >> 29
	return h
}
