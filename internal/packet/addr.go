// Package packet models IPv4 packets, addresses and prefixes for the
// simulator and implements a compact wire format so control-plane and
// traceback components can hash and serialize real bytes.
//
// Addresses are plain uint32s wrapped in a named type: the simulator moves
// hundreds of millions of packets per experiment, so address handling must
// be allocation-free and trivially comparable.
package packet

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("packet: invalid IPv4 address %q", s)
	}
	var a uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("packet: invalid IPv4 address %q", s)
		}
		a = a<<8 | uint32(v)
	}
	return Addr(a), nil
}

// MustParseAddr is ParseAddr that panics on error, for literals in tests
// and examples.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address in dotted-quad notation.
func (a Addr) String() string {
	var b [15]byte
	buf := strconv.AppendUint(b[:0], uint64(a>>24), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>16&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>8&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a&0xff), 10)
	return string(buf)
}

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr Addr
	Bits uint8 // prefix length, 0..32
}

// ParsePrefix parses "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("packet: prefix %q missing /length", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("packet: invalid prefix length in %q", s)
	}
	return MakePrefix(a, uint8(bits)), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// MakePrefix builds a canonical prefix: host bits below the prefix length
// are zeroed.
func MakePrefix(a Addr, bits uint8) Prefix {
	if bits > 32 {
		panic("packet: prefix length > 32")
	}
	return Prefix{Addr: a & Addr(maskFor(bits)), Bits: bits}
}

func maskFor(bits uint8) uint32 {
	if bits == 0 {
		return 0
	}
	return ^uint32(0) << (32 - bits)
}

// Mask returns the prefix's network mask.
func (p Prefix) Mask() uint32 { return maskFor(p.Bits) }

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return uint32(a)&p.Mask() == uint32(p.Addr)
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Bits <= q.Bits {
		return p.Contains(q.Addr)
	}
	return q.Contains(p.Addr)
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - p.Bits) }

// Nth returns the i-th address inside the prefix. It panics if i is out of
// range; topology builders use it to hand out host addresses.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.NumAddrs() {
		panic(fmt.Sprintf("packet: address index %d outside %v", i, p))
	}
	return p.Addr + Addr(i)
}

// String renders CIDR notation.
func (p Prefix) String() string {
	return p.Addr.String() + "/" + strconv.Itoa(int(p.Bits))
}
