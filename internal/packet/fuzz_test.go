package packet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalBinary checks that arbitrary byte strings never panic the
// wire decoder, and that anything it accepts re-marshals to the identical
// bytes (canonical round trip).
func FuzzUnmarshalBinary(f *testing.F) {
	good, _ := (&Packet{
		Src: 0x0a000001, Dst: 0x14000001, Proto: TCP, TTL: 64,
		SrcPort: 1234, DstPort: 80, Flags: FlagSYN, Seq: 7,
		Size: 64, Payload: []byte("hello"),
	}).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, MinHeaderBytes))
	f.Add(bytes.Repeat([]byte{0xff}, MinHeaderBytes+4))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := p.UnmarshalBinary(data); err != nil {
			return // rejection is fine; panics are not
		}
		out, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted packet fails to marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip not canonical:\n in  %x\n out %x", data, out)
		}
	})
}

// FuzzParsePrefix checks the CIDR parser never panics and that accepted
// inputs round-trip through String (canonical form).
func FuzzParsePrefix(f *testing.F) {
	for _, s := range []string{"10.0.0.0/8", "0.0.0.0/0", "255.255.255.255/32", "1.2.3.4/33", "x/8", "1.2.3.4"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		q, err := ParsePrefix(p.String())
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", p.String(), err)
		}
		if q != p {
			t.Fatalf("canonical round trip changed value: %v vs %v", p, q)
		}
	})
}

// FuzzParseAddr checks the dotted-quad parser against a reference
// reconstruction.
func FuzzParseAddr(f *testing.F) {
	for _, s := range []string{"0.0.0.0", "255.255.255.255", "10.1.2.3", "1.2.3", "01.2.3.4", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		if got := a.String(); got != s {
			t.Fatalf("accepted %q but canonical form is %q", s, got)
		}
	})
}
