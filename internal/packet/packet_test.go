package packet

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"10.0.0.1", 0x0a000001, true},
		{"192.168.1.200", 0xc0a801c8, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"-1.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"01.2.3.4", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		b, err := ParseAddr(a.String())
		return err == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseAddr on junk did not panic")
		}
	}()
	MustParseAddr("not-an-addr")
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.1.2.3/16")
	if p.Addr != MustParseAddr("10.1.0.0") || p.Bits != 16 {
		t.Errorf("prefix not canonicalized: %v", p)
	}
	if p.String() != "10.1.0.0/16" {
		t.Errorf("String = %q", p.String())
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) accepted invalid input", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("192.168.0.0/16")
	if !p.Contains(MustParseAddr("192.168.55.1")) {
		t.Error("prefix should contain inner address")
	}
	if p.Contains(MustParseAddr("192.169.0.1")) {
		t.Error("prefix should not contain outside address")
	}
	all := MakePrefix(0, 0)
	if !all.Contains(MustParseAddr("8.8.8.8")) {
		t.Error("/0 should contain everything")
	}
	host := MustParsePrefix("10.0.0.5/32")
	if !host.Contains(MustParseAddr("10.0.0.5")) || host.Contains(MustParseAddr("10.0.0.6")) {
		t.Error("/32 must match exactly one address")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.5.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes must overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestPrefixNth(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/24")
	if got := p.Nth(0); got != MustParseAddr("10.0.0.0") {
		t.Errorf("Nth(0) = %v", got)
	}
	if got := p.Nth(255); got != MustParseAddr("10.0.0.255") {
		t.Errorf("Nth(255) = %v", got)
	}
	if p.NumAddrs() != 256 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
	defer func() {
		if recover() == nil {
			t.Error("Nth out of range did not panic")
		}
	}()
	p.Nth(256)
}

func TestPacketFlowReverse(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, Proto: TCP, SrcPort: 1000, DstPort: 80}
	k := p.Flow()
	r := k.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SrcPort != 80 || r.DstPort != 1000 {
		t.Errorf("Reverse = %+v", r)
	}
	if r.Reverse() != k {
		t.Error("double reverse is not identity")
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, Size: 100, Payload: []byte{1, 2, 3}}
	q := p.Clone()
	q.Payload[0] = 99
	q.Src = 5
	if p.Payload[0] != 1 || p.Src != 1 {
		t.Error("Clone aliases original")
	}
}

func TestPacketValidate(t *testing.T) {
	ok := &Packet{Size: 100, Payload: make([]byte, 72)}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid packet rejected: %v", err)
	}
	tooSmall := &Packet{Size: 10}
	if err := tooSmall.Validate(); err == nil {
		t.Error("undersized packet accepted")
	}
	overPayload := &Packet{Size: 40, Payload: make([]byte, 40)}
	if err := overPayload.Validate(); err == nil {
		t.Error("payload larger than size accepted")
	}
}

func TestWireRoundTrip(t *testing.T) {
	p := &Packet{
		Src: MustParseAddr("10.1.2.3"), Dst: MustParseAddr("172.16.0.9"),
		Proto: TCP, TTL: 61, SrcPort: 31337, DstPort: 80,
		Flags: FlagSYN | FlagACK, Seq: 0xdeadbeef,
		Size: 120, Payload: []byte("GET / HTTP/1.0\r\n"),
	}
	buf, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := q.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if q.Src != p.Src || q.Dst != p.Dst || q.Proto != p.Proto || q.TTL != p.TTL ||
		q.SrcPort != p.SrcPort || q.DstPort != p.DstPort || q.Flags != p.Flags ||
		q.Seq != p.Seq || q.Size != p.Size || string(q.Payload) != string(p.Payload) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", q, *p)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(src, dst, seq uint32, sp, dp uint16, ttl, flags uint8, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := &Packet{
			Src: Addr(src), Dst: Addr(dst), Proto: UDP, TTL: ttl,
			SrcPort: sp, DstPort: dp, Flags: flags, Seq: seq,
			Size: MinHeaderBytes + len(payload), Payload: payload,
		}
		buf, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		var q Packet
		if err := q.UnmarshalBinary(buf); err != nil {
			return false
		}
		return q.Digest() == p.Digest() && q.Size == p.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var p Packet
	if err := p.UnmarshalBinary(make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
	good, _ := (&Packet{Size: 50, Payload: []byte("xy")}).MarshalBinary()
	bad := append([]byte(nil), good...)
	bad = bad[:len(bad)-1] // truncate payload
	if err := p.UnmarshalBinary(bad); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestMarshalInvalidPacket(t *testing.T) {
	if _, err := (&Packet{Size: 1}).MarshalBinary(); err == nil {
		t.Error("marshal of invalid packet succeeded")
	}
}

func TestDigestTTLInvariant(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, Proto: TCP, TTL: 64, Size: 40}
	d1 := p.Digest()
	p.TTL = 10
	if p.Digest() != d1 {
		t.Error("digest changed with TTL; traceback would not recognize the packet downstream")
	}
}

func TestDigestDiscriminates(t *testing.T) {
	base := Packet{Src: 1, Dst: 2, Proto: TCP, SrcPort: 5, DstPort: 80, Seq: 7, Size: 40}
	variants := []Packet{base, base, base, base, base, base}
	variants[1].Src = 9
	variants[2].Dst = 9
	variants[3].SrcPort = 9
	variants[4].Seq = 9
	variants[5].Size = 41
	d0 := variants[0].Digest()
	for i := 1; i < len(variants); i++ {
		if variants[i].Digest() == d0 {
			t.Errorf("variant %d has same digest as base", i)
		}
	}
}

func TestDigestWithSaltIndependence(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, Size: 40}
	if p.DigestWithSalt(1) == p.DigestWithSalt(2) {
		t.Error("different salts produced identical digests")
	}
}

func TestKindAndProtoStrings(t *testing.T) {
	if TCP.String() != "TCP" || UDP.String() != "UDP" || ICMP.String() != "ICMP" {
		t.Error("proto names wrong")
	}
	if Proto(99).String() != "proto(99)" {
		t.Error("unknown proto formatting wrong")
	}
	if KindAttack.String() != "attack" || KindLegit.String() != "legit" ||
		KindReflect.String() != "reflect" || KindControl.String() != "control" ||
		KindService.String() != "service" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Src: MustParseAddr("1.2.3.4"), Dst: MustParseAddr("5.6.7.8"),
		Proto: TCP, TTL: 64, SrcPort: 10, DstPort: 80, Size: 40}
	s := p.String()
	if s == "" {
		t.Error("empty String()")
	}
}
