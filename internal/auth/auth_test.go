package auth

import (
	"bytes"
	"testing"

	"dtc/internal/packet"
)

func seed(b byte) []byte {
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	return s
}

func TestNewIdentity(t *testing.T) {
	id, err := NewIdentity("alice", seed(1))
	if err != nil {
		t.Fatal(err)
	}
	if id.Name != "alice" || len(id.Pub) == 0 {
		t.Error("identity incomplete")
	}
	id2, err := NewIdentity("alice", seed(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(id.Pub, id2.Pub) {
		t.Error("same seed produced different keys")
	}
	if _, err := NewIdentity("", seed(1)); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewIdentity("x", []byte{1, 2}); err == nil {
		t.Error("short seed accepted")
	}
	random, err := NewIdentity("r", nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(random.Pub, id.Pub) {
		t.Error("random identity equals seeded identity")
	}
}

func TestSignVerify(t *testing.T) {
	id, _ := NewIdentity("a", seed(2))
	msg := []byte("hello")
	sig := id.Sign(msg)
	if !Verify(id.Pub, msg, sig) {
		t.Error("valid signature rejected")
	}
	if Verify(id.Pub, []byte("tampered"), sig) {
		t.Error("tampered message verified")
	}
	other, _ := NewIdentity("b", seed(3))
	if Verify(other.Pub, msg, sig) {
		t.Error("wrong key verified")
	}
	if Verify(nil, msg, sig) {
		t.Error("nil key verified")
	}
}

func issue(t *testing.T) (*Identity, *Identity, *Certificate) {
	t.Helper()
	ca, _ := NewIdentity("tcsp", seed(10))
	owner, _ := NewIdentity("acme", seed(11))
	cert, err := IssueCertificate(ca, owner,
		[]packet.Prefix{packet.MustParsePrefix("10.0.0.0/16"), packet.MustParsePrefix("192.168.0.0/24")},
		1, 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return ca, owner, cert
}

func TestCertificateVerify(t *testing.T) {
	ca, _, cert := issue(t)
	if err := cert.Verify(ca.Pub, 500); err != nil {
		t.Errorf("valid certificate rejected: %v", err)
	}
	if err := cert.Verify(ca.Pub, 50); err == nil {
		t.Error("not-yet-valid certificate accepted")
	}
	if err := cert.Verify(ca.Pub, 1000); err == nil {
		t.Error("expired certificate accepted")
	}
	mallory, _ := NewIdentity("mallory", seed(12))
	if err := cert.Verify(mallory.Pub, 500); err == nil {
		t.Error("certificate verified under wrong CA key")
	}
}

func TestCertificateTamperDetection(t *testing.T) {
	ca, _, cert := issue(t)
	mutations := []func(*Certificate){
		func(c *Certificate) { c.Owner = "evil" },
		func(c *Certificate) { c.Prefixes = append(c.Prefixes, "0.0.0.0/0") },
		func(c *Certificate) { c.Prefixes[0] = "10.0.0.0/8" },
		func(c *Certificate) { c.Serial++ },
		func(c *Certificate) { c.NotAfter += 100000 },
		func(c *Certificate) { c.PublicKey[0] ^= 1 },
		func(c *Certificate) { c.Issuer = "other" },
	}
	for i, mutate := range mutations {
		cp := *cert
		cp.Prefixes = append([]string(nil), cert.Prefixes...)
		cp.PublicKey = append([]byte(nil), cert.PublicKey...)
		mutate(&cp)
		if err := cp.Verify(ca.Pub, 500); err == nil {
			t.Errorf("mutation %d not detected", i)
		}
	}
}

func TestCertificateCovers(t *testing.T) {
	_, _, cert := issue(t)
	cases := []struct {
		p    string
		want bool
	}{
		{"10.0.0.0/16", true},
		{"10.0.5.0/24", true},
		{"10.0.5.5/32", true},
		{"10.1.0.0/16", false},
		{"10.0.0.0/8", false}, // wider than certified
		{"192.168.0.0/24", true},
		{"192.168.1.0/24", false},
		{"0.0.0.0/0", false},
	}
	for _, c := range cases {
		if got := cert.Covers(packet.MustParsePrefix(c.p)); got != c.want {
			t.Errorf("Covers(%s) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCertificateMarshalRoundTrip(t *testing.T) {
	ca, _, cert := issue(t)
	data, err := cert.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCertificate(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(ca.Pub, 500); err != nil {
		t.Errorf("round-tripped certificate invalid: %v", err)
	}
	if _, err := UnmarshalCertificate([]byte("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
}

func TestIssueCertificateValidation(t *testing.T) {
	ca, _ := NewIdentity("tcsp", seed(10))
	owner, _ := NewIdentity("acme", seed(11))
	if _, err := IssueCertificate(ca, owner, nil, 1, 100, 100); err == nil {
		t.Error("empty validity window accepted")
	}
}

func TestSignedRequest(t *testing.T) {
	_, owner, cert := issue(t)
	body := []byte(`{"action":"deploy"}`)
	req := SignRequest(owner, cert.Serial, 42, body)
	if err := VerifyRequest(cert, req); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	// Tampered body.
	bad := *req
	bad.Body = []byte(`{"action":"destroy"}`)
	if err := VerifyRequest(cert, &bad); err == nil {
		t.Error("tampered body accepted")
	}
	// Wrong serial.
	bad2 := *req
	bad2.CertSerial = 99
	if err := VerifyRequest(cert, &bad2); err == nil {
		t.Error("serial mismatch accepted")
	}
	// Signed by somebody else's key.
	mallory, _ := NewIdentity("mallory", seed(13))
	forged := SignRequest(mallory, cert.Serial, 42, body)
	if err := VerifyRequest(cert, forged); err == nil {
		t.Error("forged request accepted")
	}
	// Nonce is covered by the signature.
	bad3 := *req
	bad3.Nonce = 43
	if err := VerifyRequest(cert, &bad3); err == nil {
		t.Error("nonce mutation accepted")
	}
}
