package auth_test

import (
	"fmt"

	"dtc/internal/auth"
	"dtc/internal/packet"
)

// Example walks the trust chain of the traffic control service: the TCSP
// certifies a user's key for verified prefixes, the user signs a request,
// and an ISP validates both before acting.
func Example() {
	seed := func(b byte) []byte {
		s := make([]byte, 32)
		for i := range s {
			s[i] = b
		}
		return s
	}
	tcspID, _ := auth.NewIdentity("tcsp", seed(1))
	userID, _ := auth.NewIdentity("acme", seed(2))

	cert, _ := auth.IssueCertificate(tcspID, userID,
		[]packet.Prefix{packet.MustParsePrefix("192.0.2.0/24")}, 1, 0, 1000)

	// The ISP checks the certificate chain…
	fmt.Println("cert valid:", cert.Verify(tcspID.Pub, 500) == nil)
	// …that it covers the addresses being controlled…
	fmt.Println("covers /26:", cert.Covers(packet.MustParsePrefix("192.0.2.64/26")))
	fmt.Println("covers foreign:", cert.Covers(packet.MustParsePrefix("198.51.100.0/24")))

	// …and that the request was really signed by the certified key.
	req := auth.SignRequest(userID, cert.Serial, 1, []byte(`{"op":"deploy"}`))
	fmt.Println("request valid:", auth.VerifyRequest(cert, req) == nil)

	mallory, _ := auth.NewIdentity("mallory", seed(3))
	forged := auth.SignRequest(mallory, cert.Serial, 2, []byte(`{"op":"deploy"}`))
	fmt.Println("forgery valid:", auth.VerifyRequest(cert, forged) == nil)
	// Output:
	// cert valid: true
	// covers /26: true
	// covers foreign: false
	// request valid: true
	// forgery valid: false
}
