// Package auth implements the identity and certificate machinery the paper
// sketches for the traffic control service (§5.1): the TCSP acts like a
// certification authority, binding a network user's public key to the set
// of IP prefixes whose ownership it has verified with the Internet number
// authority. ISP network management systems later accept traffic-control
// requests only when accompanied by a valid TCSP certificate covering the
// addresses being controlled.
package auth

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"dtc/internal/packet"
)

// Identity is a named ed25519 key pair.
type Identity struct {
	Name string
	Priv ed25519.PrivateKey
	Pub  ed25519.PublicKey
}

// NewIdentity creates an identity. A 32-byte seed makes key generation
// deterministic (tests, reproducible simulations); a nil seed draws from
// crypto/rand.
func NewIdentity(name string, seed []byte) (*Identity, error) {
	if name == "" {
		return nil, fmt.Errorf("auth: empty identity name")
	}
	var priv ed25519.PrivateKey
	switch {
	case seed == nil:
		var err error
		_, priv, err = ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("auth: key generation: %w", err)
		}
	case len(seed) == ed25519.SeedSize:
		priv = ed25519.NewKeyFromSeed(seed)
	default:
		return nil, fmt.Errorf("auth: seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	return &Identity{Name: name, Priv: priv, Pub: priv.Public().(ed25519.PublicKey)}, nil
}

// Sign signs msg with the identity's private key.
func (id *Identity) Sign(msg []byte) []byte { return ed25519.Sign(id.Priv, msg) }

// Verify checks a signature against a public key.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}

// Certificate binds an owner name and public key to verified IP prefixes.
// Validity is expressed in simulation seconds so certificates work inside
// deterministic experiments; the live demo uses wall-clock seconds.
type Certificate struct {
	Owner     string   `json:"owner"`
	PublicKey []byte   `json:"public_key"`
	Prefixes  []string `json:"prefixes"`
	Serial    uint64   `json:"serial"`
	NotBefore int64    `json:"not_before"`
	NotAfter  int64    `json:"not_after"`
	Issuer    string   `json:"issuer"`
	Signature []byte   `json:"signature,omitempty"`
}

// signingBytes returns the canonical byte string covered by the signature.
func (c *Certificate) signingBytes() []byte {
	var b bytes.Buffer
	writeStr := func(s string) {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(s)))
		b.Write(l[:])
		b.WriteString(s)
	}
	writeStr(c.Owner)
	writeStr(c.Issuer)
	b.Write(c.PublicKey)
	var nums [24]byte
	binary.BigEndian.PutUint64(nums[0:], c.Serial)
	binary.BigEndian.PutUint64(nums[8:], uint64(c.NotBefore))
	binary.BigEndian.PutUint64(nums[16:], uint64(c.NotAfter))
	b.Write(nums[:])
	for _, p := range c.Prefixes {
		writeStr(p)
	}
	return b.Bytes()
}

// IssueCertificate signs a certificate binding subject's key to prefixes.
func IssueCertificate(ca *Identity, subject *Identity, prefixes []packet.Prefix, serial uint64, notBefore, notAfter int64) (*Certificate, error) {
	if notAfter <= notBefore {
		return nil, fmt.Errorf("auth: certificate validity window empty")
	}
	c := &Certificate{
		Owner:     subject.Name,
		PublicKey: append([]byte(nil), subject.Pub...),
		Serial:    serial,
		NotBefore: notBefore,
		NotAfter:  notAfter,
		Issuer:    ca.Name,
	}
	for _, p := range prefixes {
		c.Prefixes = append(c.Prefixes, p.String())
	}
	c.Signature = ca.Sign(c.signingBytes())
	return c, nil
}

// Verify checks the certificate's signature and validity at time `at`.
func (c *Certificate) Verify(caPub ed25519.PublicKey, at int64) error {
	if at < c.NotBefore || at >= c.NotAfter {
		return fmt.Errorf("auth: certificate for %q not valid at %d (window [%d,%d))", c.Owner, at, c.NotBefore, c.NotAfter)
	}
	if !Verify(caPub, c.signingBytes(), c.Signature) {
		return fmt.Errorf("auth: certificate for %q has invalid signature", c.Owner)
	}
	return nil
}

// Covers reports whether the certificate authorizes control over prefix p
// (p must be contained in one of the certified prefixes).
func (c *Certificate) Covers(p packet.Prefix) bool {
	for _, s := range c.Prefixes {
		cp, err := packet.ParsePrefix(s)
		if err != nil {
			continue
		}
		if cp.Bits <= p.Bits && cp.Contains(p.Addr) {
			return true
		}
	}
	return false
}

// Marshal encodes the certificate as JSON for the control-plane wire.
func (c *Certificate) Marshal() ([]byte, error) { return json.Marshal(c) }

// UnmarshalCertificate decodes a certificate.
func UnmarshalCertificate(data []byte) (*Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("auth: bad certificate encoding: %w", err)
	}
	return &c, nil
}

// SignedRequest wraps a control-plane request body with a proof of key
// possession: the owner signs (serial || nonce || body).
type SignedRequest struct {
	CertSerial uint64 `json:"cert_serial"`
	Nonce      uint64 `json:"nonce"`
	Body       []byte `json:"body"`
	Signature  []byte `json:"signature"`
}

func requestBytes(serial, nonce uint64, body []byte) []byte {
	buf := make([]byte, 16+len(body))
	binary.BigEndian.PutUint64(buf[0:], serial)
	binary.BigEndian.PutUint64(buf[8:], nonce)
	copy(buf[16:], body)
	return buf
}

// SignRequest produces a signed request for the given certificate serial.
func SignRequest(id *Identity, serial, nonce uint64, body []byte) *SignedRequest {
	return &SignedRequest{
		CertSerial: serial,
		Nonce:      nonce,
		Body:       append([]byte(nil), body...),
		Signature:  id.Sign(requestBytes(serial, nonce, body)),
	}
}

// VerifyRequest checks the request signature against the certificate's
// bound public key.
func VerifyRequest(c *Certificate, r *SignedRequest) error {
	if r.CertSerial != c.Serial {
		return fmt.Errorf("auth: request serial %d does not match certificate %d", r.CertSerial, c.Serial)
	}
	if !Verify(c.PublicKey, requestBytes(r.CertSerial, r.Nonce, r.Body), r.Signature) {
		return fmt.Errorf("auth: request signature invalid for owner %q", c.Owner)
	}
	return nil
}
