package topology_test

import (
	"fmt"

	"dtc/internal/sim"
	"dtc/internal/topology"
)

// ExampleBarabasiAlbert builds the power-law AS graph the deployment
// experiments run on and shows its heavy-tailed core.
func ExampleBarabasiAlbert() {
	g, err := topology.BarabasiAlbert(1000, 2, sim.NewRNG(42))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("nodes:", g.Len())
	fmt.Println("connected:", g.Connected())
	top := g.NodesByDegree()[0]
	fmt.Println("hub degree >= 40:", g.Degree(top) >= 40)
	// Output:
	// nodes: 1000
	// connected: true
	// hub degree >= 40: true
}

// ExampleDumbbell shows the classic congestion topology used by the
// pushback experiments.
func ExampleDumbbell() {
	g := topology.Dumbbell(2, 2, 2)
	fmt.Println("nodes:", g.Len())
	fmt.Println("core edge:", g.HasEdge(4, 5))
	// Output:
	// nodes: 6
	// core edge: true
}
