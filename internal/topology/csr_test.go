package topology

import (
	"testing"
	"testing/quick"

	"dtc/internal/sim"
)

// checkCSRMatchesAdjacency asserts the CSR view visits every node's
// neighbors in exactly the order Neighbors returns them — the property
// the byte-identical-experiments guarantee rests on (equal-cost Dijkstra
// choices depend on relaxation order).
func checkCSRMatchesAdjacency(t *testing.T, g *Graph) {
	t.Helper()
	c := g.CSR()
	if c.NumNodes() != g.Len() {
		t.Fatalf("CSR has %d nodes, graph %d", c.NumNodes(), g.Len())
	}
	total := 0
	for v := 0; v < g.Len(); v++ {
		adj := g.Neighbors(v)
		row := c.Row(v)
		if len(row) != len(adj) {
			t.Fatalf("node %d: CSR row len %d, adjacency len %d", v, len(row), len(adj))
		}
		for k := range adj {
			if int(row[k]) != adj[k] {
				t.Fatalf("node %d neighbor %d: CSR %d, adjacency %d", v, k, row[k], adj[k])
			}
		}
		total += len(adj)
	}
	if len(c.Adj) != total || int(c.Off[g.Len()]) != total {
		t.Fatalf("CSR size %d/%d, want %d", len(c.Adj), c.Off[g.Len()], total)
	}
}

func TestPropertyCSROrderMatchesAdjacency(t *testing.T) {
	f := func(seed uint64, nRaw uint8, cuts uint8) bool {
		n := 5 + int(nRaw)%120
		g, err := BarabasiAlbert(n, 2, sim.NewRNG(seed))
		if err != nil {
			return false
		}
		checkCSRMatchesAdjacency(t, g)
		// Mutations must invalidate the cached view: remove random edges
		// (and re-add one) and re-check order equivalence each time.
		rng := sim.NewRNG(seed + 7)
		for i := 0; i < int(cuts)%5; i++ {
			edges := g.Edges()
			if len(edges) == 0 {
				break
			}
			e := edges[rng.Intn(len(edges))]
			g.RemoveEdge(e.A, e.B)
			checkCSRMatchesAdjacency(t, g)
			if err := g.AddEdge(e.A, e.B); err != nil {
				return false
			}
			checkCSRMatchesAdjacency(t, g)
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCSRCachingAndHasEdge(t *testing.T) {
	g := Line(5)
	c1 := g.CSR()
	if c2 := g.CSR(); c1 != c2 {
		t.Error("CSR rebuilt without a topology change")
	}
	if !c1.HasEdge(1, 2) || c1.HasEdge(0, 2) || c1.HasEdge(-1, 0) || c1.HasEdge(0, 99) {
		t.Error("CSR.HasEdge wrong")
	}
	g.RemoveEdge(1, 2)
	c3 := g.CSR()
	if c3 == c1 {
		t.Error("CSR not rebuilt after RemoveEdge")
	}
	if c3.HasEdge(1, 2) {
		t.Error("removed edge still present in new view")
	}
	// The old snapshot stays readable (immutable).
	if !c1.HasEdge(1, 2) {
		t.Error("old CSR snapshot mutated")
	}
}
