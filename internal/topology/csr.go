package topology

// CSR is a compiled compressed-sparse-row view of a Graph's adjacency:
// node v's neighbors are Adj[Off[v]:Off[v+1]], in exactly the order
// Neighbors(v) returns them. Flattening the slice-of-slices adjacency into
// two int32 arrays keeps Dijkstra's relaxation loop on one or two cache
// lines per node and halves the index width; preserving the per-node
// neighbor order keeps every equal-cost routing choice — and therefore
// every experiment output — byte-identical to iteration over the slices.
//
// A CSR is an immutable snapshot: Graph.CSR() rebuilds it after any edge
// mutation (tracked by a generation counter) and callers may hold and read
// a returned view concurrently, even across graph mutations, since stale
// views are simply abandoned.
type CSR struct {
	Off []int32 // len n+1; row v spans Off[v]..Off[v+1]
	Adj []int32 // len 2*edges; concatenated neighbor lists
}

// NumNodes returns the number of nodes the view was compiled over.
func (c *CSR) NumNodes() int { return len(c.Off) - 1 }

// Row returns node v's neighbor list (shared; callers must not mutate).
func (c *CSR) Row(v int) []int32 { return c.Adj[c.Off[v]:c.Off[v+1]] }

// HasEdge reports whether a and b are adjacent in the snapshot.
func (c *CSR) HasEdge(a, b int) bool {
	if a < 0 || b < 0 || a >= c.NumNodes() || b >= c.NumNodes() {
		return false
	}
	for _, n := range c.Row(a) {
		if int(n) == b {
			return true
		}
	}
	return false
}

// CSR returns the compiled adjacency view for the graph's current edge
// set, rebuilding it only when the topology has changed since the last
// call. Safe for concurrent callers; the graph itself must be quiescent
// (no concurrent AddEdge/RemoveEdge), which every consumer already
// guarantees — sweeps read fixed topologies and link failures happen at
// quiescent points.
func (g *Graph) CSR() *CSR {
	g.csrMu.Lock()
	defer g.csrMu.Unlock()
	if g.csr != nil && g.csrGen == g.gen {
		return g.csr
	}
	n := g.Len()
	c := &CSR{Off: make([]int32, n+1)}
	total := 0
	for v := 0; v < n; v++ {
		total += len(g.adj[v])
		c.Off[v+1] = int32(total)
	}
	c.Adj = make([]int32, total)
	k := 0
	for v := 0; v < n; v++ {
		for _, u := range g.adj[v] {
			c.Adj[k] = int32(u)
			k++
		}
	}
	g.csr, g.csrGen = c, g.gen
	return c
}
