package topology

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"dtc/internal/sim"
)

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative node accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("reversed duplicate edge accepted")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := Star(4)
	if g.Degree(0) != 4 {
		t.Errorf("hub degree = %d", g.Degree(0))
	}
	for i := 1; i <= 4; i++ {
		if g.Degree(i) != 1 {
			t.Errorf("leaf %d degree = %d", i, g.Degree(i))
		}
	}
	n := g.Neighbors(0)
	if len(n) != 4 {
		t.Errorf("hub neighbors = %v", n)
	}
}

func TestConnected(t *testing.T) {
	g := NewGraph(4)
	if g.Connected() {
		t.Error("edgeless 4-node graph reported connected")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 2, 3)
	if g.Connected() {
		t.Error("two components reported connected")
	}
	mustEdge(t, g, 1, 2)
	if !g.Connected() {
		t.Error("path graph reported disconnected")
	}
	if !NewGraph(0).Connected() || !NewGraph(1).Connected() {
		t.Error("trivial graphs must be connected")
	}
}

func mustEdge(t *testing.T, g *Graph, a, b int) {
	t.Helper()
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
}

func TestBarabasiAlbertBasics(t *testing.T) {
	rng := sim.NewRNG(42)
	g, err := BarabasiAlbert(500, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 500 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Connected() {
		t.Error("BA graph disconnected")
	}
	// Edge count: clique of m+1=3 nodes has 3 edges; each later node adds m=2.
	want := 3 + (500-3)*2
	if g.NumEdges() != want {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
	for i := 0; i < g.Len(); i++ {
		if g.Degree(i) < 2 {
			t.Errorf("node %d degree %d < m", i, g.Degree(i))
		}
	}
}

func TestBarabasiAlbertPowerLaw(t *testing.T) {
	rng := sim.NewRNG(7)
	g, err := BarabasiAlbert(2000, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy tail: the max degree should far exceed the mean, and the
	// degree distribution should be monotone-decreasing in log bins.
	degrees := make([]int, g.Len())
	sum := 0
	for i := range degrees {
		degrees[i] = g.Degree(i)
		sum += degrees[i]
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degrees)))
	mean := float64(sum) / float64(len(degrees))
	if float64(degrees[0]) < 8*mean {
		t.Errorf("max degree %d not heavy-tailed vs mean %.1f", degrees[0], mean)
	}
	// Top 1% of nodes should hold a disproportionate share of edge ends.
	topShare := 0
	for _, d := range degrees[:20] {
		topShare += d
	}
	if float64(topShare)/float64(sum) < 0.10 {
		t.Errorf("top 1%% of nodes hold only %.1f%% of degree mass", 100*float64(topShare)/float64(sum))
	}
}

func TestBarabasiAlbertDeterminism(t *testing.T) {
	g1, err := BarabasiAlbert(300, 3, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BarabasiAlbert(300, 3, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	if _, err := BarabasiAlbert(2, 2, sim.NewRNG(1)); err == nil {
		t.Error("n < m+1 accepted")
	}
	if _, err := BarabasiAlbert(10, 0, sim.NewRNG(1)); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestClassifyRolesAndStubs(t *testing.T) {
	g, err := BarabasiAlbert(300, 2, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	g.ClassifyRoles(4)
	stubs := g.Stubs()
	transit := g.Len() - len(stubs)
	if transit == 0 || len(stubs) == 0 {
		t.Fatalf("degenerate classification: %d transit, %d stubs", transit, len(stubs))
	}
	for _, id := range stubs {
		if g.Degree(id) > 4 {
			t.Errorf("stub %d has degree %d", id, g.Degree(id))
		}
	}
	if len(stubs) < transit {
		t.Errorf("power-law graph should have more stubs (%d) than transit (%d)", len(stubs), transit)
	}
}

func TestNodesByDegree(t *testing.T) {
	g := Star(5)
	ids := g.NodesByDegree()
	if ids[0] != 0 {
		t.Errorf("hub not first: %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if g.Degree(ids[i]) > g.Degree(ids[i-1]) {
			t.Errorf("not sorted by degree at %d", i)
		}
	}
}

func TestLine(t *testing.T) {
	g := Line(5)
	if !g.Connected() {
		t.Error("line disconnected")
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(4) != 1 || g.Degree(2) != 2 {
		t.Error("line degrees wrong")
	}
	if g.Nodes[0].Role != RoleStub || g.Nodes[2].Role != RoleTransit {
		t.Error("line roles wrong")
	}
}

func TestDumbbell(t *testing.T) {
	g := Dumbbell(3, 4, 2)
	if !g.Connected() {
		t.Error("dumbbell disconnected")
	}
	if g.Len() != 9 {
		t.Errorf("Len = %d", g.Len())
	}
	// Left leaves attach to core node 7, right leaves to core node 8.
	for i := 0; i < 3; i++ {
		if !g.HasEdge(i, 7) {
			t.Errorf("left leaf %d not attached to core", i)
		}
	}
	for i := 3; i < 7; i++ {
		if !g.HasEdge(i, 8) {
			t.Errorf("right leaf %d not attached to core", i)
		}
	}
	if !g.HasEdge(7, 8) {
		t.Error("core not connected")
	}
}

func TestTransitStub(t *testing.T) {
	g, err := TransitStub(8, 5, 0.3, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 8+40 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Connected() {
		t.Error("transit-stub disconnected")
	}
	for i := 0; i < 8; i++ {
		if g.Nodes[i].Role != RoleTransit {
			t.Errorf("core node %d not transit", i)
		}
	}
	for i := 8; i < g.Len(); i++ {
		if g.Nodes[i].Role != RoleStub {
			t.Errorf("stub node %d misclassified", i)
		}
		if d := g.Degree(i); d < 1 || d > 2 {
			t.Errorf("stub %d degree %d, want 1..2", i, d)
		}
	}
}

func TestTransitStubSmall(t *testing.T) {
	for _, transit := range []int{1, 2, 3} {
		g, err := TransitStub(transit, 2, 0.5, sim.NewRNG(11))
		if err != nil {
			t.Fatalf("transit=%d: %v", transit, err)
		}
		if !g.Connected() {
			t.Errorf("transit=%d: disconnected", transit)
		}
	}
	if _, err := TransitStub(0, 1, 0, sim.NewRNG(1)); err == nil {
		t.Error("TransitStub(0,…) accepted")
	}
}

// Property: BA graphs are connected and have the exact predicted edge count
// for all valid (n, m) pairs.
func TestPropertyBarabasiAlbert(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		m := 1 + int(mRaw)%4
		n := m + 1 + int(nRaw)%120
		g, err := BarabasiAlbert(n, m, sim.NewRNG(seed))
		if err != nil {
			return false
		}
		wantEdges := m*(m+1)/2 + (n-m-1)*m
		return g.Connected() && g.NumEdges() == wantEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRoleString(t *testing.T) {
	if RoleStub.String() != "stub" || RoleTransit.String() != "transit" {
		t.Error("role strings wrong")
	}
}

// Sanity: degree distribution second moment is finite-sample stable enough
// for deterministic tests across seeds.
func TestBADegreeMoments(t *testing.T) {
	var maxima []float64
	for seed := uint64(1); seed <= 3; seed++ {
		g, err := BarabasiAlbert(1000, 2, sim.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		max := 0
		for i := 0; i < g.Len(); i++ {
			if d := g.Degree(i); d > max {
				max = d
			}
		}
		maxima = append(maxima, float64(max))
	}
	for _, m := range maxima {
		if m < 20 || math.IsNaN(m) {
			t.Errorf("max degree %v implausibly small for BA(1000,2)", m)
		}
	}
}

func TestRemoveEdge(t *testing.T) {
	g := Line(4)
	if !g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge on existing edge returned false")
	}
	if g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Error("edge still present after removal")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.Connected() {
		t.Error("cut line still connected")
	}
	if g.RemoveEdge(1, 2) {
		t.Error("double removal returned true")
	}
	if g.RemoveEdge(0, 3) {
		t.Error("removing a non-edge returned true")
	}
	if g.RemoveEdge(-1, 0) || g.RemoveEdge(0, 99) {
		t.Error("out-of-range removal returned true")
	}
	// Reverse orientation also works.
	if !g.RemoveEdge(1, 0) {
		t.Error("reverse-orientation removal failed")
	}
	if g.Degree(0) != 0 || g.Degree(1) != 0 {
		t.Errorf("degrees after removal: %d, %d", g.Degree(0), g.Degree(1))
	}
}

func TestWaxman(t *testing.T) {
	g, err := Waxman(200, 0.4, 0.15, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 200 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Connected() {
		t.Error("Waxman graph disconnected after patching")
	}
	if g.NumEdges() < 200 {
		t.Errorf("suspiciously sparse: %d edges", g.NumEdges())
	}
	// Determinism.
	g2, err := Waxman(200, 0.4, 0.15, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != g2.NumEdges() {
		t.Error("Waxman not deterministic")
	}
	// No heavy tail: max degree should be far smaller than BA's.
	max := 0
	for i := 0; i < g.Len(); i++ {
		if d := g.Degree(i); d > max {
			max = d
		}
	}
	mean := float64(2*g.NumEdges()) / float64(g.Len())
	if float64(max) > 6*mean {
		t.Errorf("Waxman degree tail too heavy: max %d vs mean %.1f", max, mean)
	}
	// Parameter validation.
	for _, bad := range [][3]float64{{1, 0.5, 0.1}, {10, 0, 0.1}, {10, 1.5, 0.1}, {10, 0.5, 0}} {
		if _, err := Waxman(int(bad[0]), bad[1], bad[2], sim.NewRNG(1)); err == nil {
			t.Errorf("Waxman(%v) accepted", bad)
		}
	}
}

func TestPropertyWaxmanConnected(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 2 + int(nRaw)%150
		g, err := Waxman(n, 0.3, 0.12, sim.NewRNG(seed))
		if err != nil {
			return false
		}
		return g.Connected() && g.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
