// Package topology builds the network graphs that experiments run on.
//
// The headline experiments (E1, E4) require an Internet-like AS-level graph:
// Park & Lee's result on ingress-filtering effectiveness — which the paper
// cites to argue that ~20% AS deployment already defeats source spoofing —
// holds specifically on power-law topologies. The Barabási–Albert generator
// here produces such graphs deterministically from a seed. Smaller
// structured generators (star, dumbbell, line, transit-stub) support
// protocol tests and micro-experiments.
package topology

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dtc/internal/sim"
)

// Role classifies an AS node, mirroring the paper's distinction between
// transit providers and peripheral (stub) ISPs — the adaptive-device
// anti-spoofing logic must know whether it sees transit traffic or
// customer traffic (paper §4.2).
type Role uint8

// AS roles.
const (
	RoleStub    Role = iota // peripheral ISP: only originates/sinks traffic
	RoleTransit             // carries third-party traffic
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == RoleTransit {
		return "transit"
	}
	return "stub"
}

// Node is one vertex (an AS, or a router in the smaller topologies).
type Node struct {
	ID   int
	Role Role
}

// Edge is an undirected link between two nodes.
type Edge struct {
	A, B int
}

// Graph is an undirected graph with adjacency lists.
type Graph struct {
	Nodes []Node
	adj   [][]int
	edges []Edge

	// Compiled CSR view cache: gen counts edge mutations, csr/csrGen
	// remember the last compiled snapshot (see CSR()).
	gen    uint64
	csrGen uint64
	csr    *CSR
	csrMu  sync.Mutex
}

// NewGraph returns a graph with n isolated nodes, all stubs.
func NewGraph(n int) *Graph {
	g := &Graph{Nodes: make([]Node, n), adj: make([][]int, n)}
	for i := range g.Nodes {
		g.Nodes[i] = Node{ID: i, Role: RoleStub}
	}
	return g
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.Nodes) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the edge list (shared slice; callers must not mutate).
func (g *Graph) Edges() []Edge { return g.edges }

// AddEdge inserts an undirected edge. Self-loops and duplicates are
// rejected with an error.
func (g *Graph) AddEdge(a, b int) error {
	if a == b {
		return fmt.Errorf("topology: self-loop at %d", a)
	}
	if a < 0 || b < 0 || a >= g.Len() || b >= g.Len() {
		return fmt.Errorf("topology: edge (%d,%d) out of range", a, b)
	}
	for _, n := range g.adj[a] {
		if n == b {
			return fmt.Errorf("topology: duplicate edge (%d,%d)", a, b)
		}
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	g.edges = append(g.edges, Edge{A: a, B: b})
	g.gen++
	return nil
}

// RemoveEdge deletes the undirected edge (a, b) and reports whether it
// existed. Used to model link failures.
func (g *Graph) RemoveEdge(a, b int) bool {
	if a < 0 || b < 0 || a >= g.Len() || b >= g.Len() || !g.HasEdge(a, b) {
		return false
	}
	drop := func(list []int, v int) []int {
		for i, n := range list {
			if n == v {
				return append(list[:i:i], list[i+1:]...)
			}
		}
		return list
	}
	g.adj[a] = drop(g.adj[a], b)
	g.adj[b] = drop(g.adj[b], a)
	for i, e := range g.edges {
		if (e.A == a && e.B == b) || (e.A == b && e.B == a) {
			g.edges = append(g.edges[:i:i], g.edges[i+1:]...)
			break
		}
	}
	g.gen++
	return true
}

// HasEdge reports whether a and b are adjacent.
func (g *Graph) HasEdge(a, b int) bool {
	for _, n := range g.adj[a] {
		if n == b {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of node id (shared slice).
func (g *Graph) Neighbors(id int) []int { return g.adj[id] }

// Degree returns the degree of node id.
func (g *Graph) Degree(id int) int { return len(g.adj[id]) }

// Connected reports whether the graph is a single connected component.
func (g *Graph) Connected() bool {
	if g.Len() == 0 {
		return true
	}
	seen := make([]bool, g.Len())
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.Len()
}

// ClassifyRoles marks every node with degree > stubMaxDegree as transit.
// BA graphs have no built-in hierarchy, so the experiments treat high-degree
// nodes as the transit core (matching how Park & Lee pick filter sites).
func (g *Graph) ClassifyRoles(stubMaxDegree int) {
	for i := range g.Nodes {
		if g.Degree(i) > stubMaxDegree {
			g.Nodes[i].Role = RoleTransit
		} else {
			g.Nodes[i].Role = RoleStub
		}
	}
}

// NodesByDegree returns node IDs sorted by descending degree (ties by ID).
// E1 uses this to pick "top-degree" deployment sites.
func (g *Graph) NodesByDegree() []int {
	ids := make([]int, g.Len())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.Degree(ids[a]), g.Degree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	return ids
}

// Stubs returns the IDs of all stub nodes.
func (g *Graph) Stubs() []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Role == RoleStub {
			out = append(out, n.ID)
		}
	}
	return out
}

// BarabasiAlbert grows a preferential-attachment graph: it starts from a
// small clique of m+1 nodes and attaches each new node to m distinct
// existing nodes with probability proportional to their degree. The result
// has a power-law degree distribution like the AS-level Internet.
func BarabasiAlbert(n, m int, rng *sim.RNG) (*Graph, error) {
	if m < 1 || n < m+1 {
		return nil, fmt.Errorf("topology: BarabasiAlbert needs n >= m+1 >= 2, got n=%d m=%d", n, m)
	}
	g := NewGraph(n)
	// Seed clique.
	for a := 0; a <= m; a++ {
		for b := a + 1; b <= m; b++ {
			if err := g.AddEdge(a, b); err != nil {
				return nil, err
			}
		}
	}
	// repeated holds each node ID once per unit of degree; sampling a
	// uniform element implements preferential attachment exactly.
	var repeated []int
	for a := 0; a <= m; a++ {
		for b := 0; b < m; b++ {
			repeated = append(repeated, a)
		}
	}
	chosen := make([]int, 0, m)
	for v := m + 1; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			c := repeated[rng.Intn(len(repeated))]
			dup := false
			for _, w := range chosen {
				if w == c {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, c)
			}
		}
		for _, w := range chosen {
			if err := g.AddEdge(v, w); err != nil {
				return nil, err
			}
			repeated = append(repeated, v, w)
		}
	}
	g.ClassifyRoles(2 * m)
	return g, nil
}

// Waxman generates the classic Waxman random graph: nodes are placed
// uniformly in the unit square and each pair is connected with probability
// alpha*exp(-d/(beta*L)), where d is their Euclidean distance and L the
// maximum distance. The result is patched to a single component by linking
// each stray component to the giant one. Waxman graphs lack the power-law
// tail of BA graphs; the E1-family experiments use them to check that
// conclusions do not hinge on degree skew.
func Waxman(n int, alpha, beta float64, rng *sim.RNG) (*Graph, error) {
	if n < 2 || alpha <= 0 || alpha > 1 || beta <= 0 {
		return nil, fmt.Errorf("topology: invalid Waxman(n=%d, alpha=%v, beta=%v)", n, alpha, beta)
	}
	g := NewGraph(n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	l := math.Sqrt2 // max distance in the unit square
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			dx, dy := xs[a]-xs[b], ys[a]-ys[b]
			d := math.Sqrt(dx*dx + dy*dy)
			if rng.Float64() < alpha*math.Exp(-d/(beta*l)) {
				if err := g.AddEdge(a, b); err != nil {
					return nil, err
				}
			}
		}
	}
	// Patch to connectivity: attach every non-giant component to node of
	// the first component via its lowest-ID member.
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		stack := []int{i}
		comp[i] = next
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.adj[v] {
				if comp[w] < 0 {
					comp[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	for i := 0; i < n; i++ {
		if comp[i] > 0 && (i == 0 || comp[i] != comp[i-1] || comp[i-1] == 0) {
			// First member of a stray component: bridge it.
			if !g.HasEdge(i, 0) && i != 0 {
				if err := g.AddEdge(i, 0); err != nil {
					return nil, err
				}
			}
			// Mark whole component as merged.
			c := comp[i]
			for j := i; j < n; j++ {
				if comp[j] == c {
					comp[j] = 0
				}
			}
		}
	}
	g.ClassifyRoles(4)
	return g, nil
}

// Star returns a hub-and-spoke graph: node 0 is the hub.
func Star(leaves int) *Graph {
	g := NewGraph(leaves + 1)
	g.Nodes[0].Role = RoleTransit
	for i := 1; i <= leaves; i++ {
		if err := g.AddEdge(0, i); err != nil {
			panic(err) // unreachable for valid construction
		}
	}
	return g
}

// Line returns a path graph of n nodes: 0-1-2-…-(n-1). Interior nodes are
// transit.
func Line(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			panic(err)
		}
	}
	for i := 1; i+1 < n; i++ {
		g.Nodes[i].Role = RoleTransit
	}
	return g
}

// Dumbbell returns two stars joined by a path of coreLen transit nodes:
// classic congestion topology for pushback experiments. Left leaves come
// first, then right leaves, then the core.
func Dumbbell(leftLeaves, rightLeaves, coreLen int) *Graph {
	if coreLen < 1 {
		coreLen = 1
	}
	n := leftLeaves + rightLeaves + coreLen
	g := NewGraph(n)
	coreStart := leftLeaves + rightLeaves
	for i := 0; i < coreLen; i++ {
		g.Nodes[coreStart+i].Role = RoleTransit
		if i > 0 {
			if err := g.AddEdge(coreStart+i-1, coreStart+i); err != nil {
				panic(err)
			}
		}
	}
	for i := 0; i < leftLeaves; i++ {
		if err := g.AddEdge(i, coreStart); err != nil {
			panic(err)
		}
	}
	for i := 0; i < rightLeaves; i++ {
		if err := g.AddEdge(leftLeaves+i, coreStart+coreLen-1); err != nil {
			panic(err)
		}
	}
	return g
}

// TransitStub builds a two-level hierarchy: a connected core of transit
// nodes (ring plus random chords) with stub nodes each homed to one or two
// transit nodes. It is a simplified GT-ITM-style topology.
func TransitStub(transit, stubsPerTransit int, multihomeFrac float64, rng *sim.RNG) (*Graph, error) {
	if transit < 1 || stubsPerTransit < 0 {
		return nil, fmt.Errorf("topology: invalid TransitStub(%d,%d)", transit, stubsPerTransit)
	}
	n := transit + transit*stubsPerTransit
	g := NewGraph(n)
	for i := 0; i < transit; i++ {
		g.Nodes[i].Role = RoleTransit
		if next := (i + 1) % transit; transit > 1 && next != i && !g.HasEdge(i, next) {
			if err := g.AddEdge(i, next); err != nil {
				return nil, err
			}
		}
	}
	// Random chords across the core to shorten paths.
	for i := 0; i < transit/2; i++ {
		a, b := rng.Intn(transit), rng.Intn(transit)
		if a != b && !g.HasEdge(a, b) {
			if err := g.AddEdge(a, b); err != nil {
				return nil, err
			}
		}
	}
	id := transit
	for t := 0; t < transit; t++ {
		for s := 0; s < stubsPerTransit; s++ {
			if err := g.AddEdge(id, t); err != nil {
				return nil, err
			}
			if transit > 1 && rng.Float64() < multihomeFrac {
				other := rng.Intn(transit)
				if other != t {
					if err := g.AddEdge(id, other); err != nil {
						return nil, err
					}
				}
			}
			id++
		}
	}
	return g, nil
}
