package topology

import (
	"testing"

	"dtc/internal/sim"
)

func shardSizes(t *testing.T, assign []int, shards int) []int {
	t.Helper()
	sizes := make([]int, shards)
	for _, s := range assign {
		sizes[s]++
	}
	return sizes
}

func TestPartitionByBlock(t *testing.T) {
	assign, err := PartitionByBlock(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3}
	for i := range want {
		if assign[i] != want[i] {
			t.Fatalf("assign = %v, want %v", assign, want)
		}
	}
	if _, err := PartitionByBlock(10, 0); err == nil {
		t.Fatal("shards=0 accepted")
	}
	if _, err := PartitionByBlock(-1, 2); err == nil {
		t.Fatal("n=-1 accepted")
	}
}

func TestPartitionGreedyBalanceAndValidity(t *testing.T) {
	g, err := BarabasiAlbert(500, 2, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 7, 8} {
		assign, err := PartitionGreedy(g, shards, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidatePartition(g, assign, shards); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		capPer := (g.Len() + shards - 1) / shards
		for s, size := range shardSizes(t, assign, shards) {
			if size > capPer {
				t.Fatalf("shards=%d: shard %d holds %d nodes, cap %d", shards, s, size, capPer)
			}
		}
	}
}

func TestPartitionGreedyBeatsBlockOnPowerLaw(t *testing.T) {
	// Node IDs carry no locality in a BA graph, so the contiguous block
	// partition is near-worst-case; the greedy streaming heuristic must cut
	// strictly fewer edges. This is the property that keeps cross-shard
	// barrier traffic (and thus sharded-engine overhead) low.
	g, err := BarabasiAlbert(2000, 2, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 8} {
		block, err := PartitionByBlock(g.Len(), shards)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := PartitionGreedy(g, shards, nil)
		if err != nil {
			t.Fatal(err)
		}
		if bc, gc := CutEdges(g, block), CutEdges(g, greedy); gc >= bc {
			t.Errorf("shards=%d: greedy cut %d >= block cut %d", shards, gc, bc)
		}
	}
}

func TestPartitionGreedyDeterministic(t *testing.T) {
	g, err := BarabasiAlbert(300, 2, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := PartitionGreedy(g, 4, nil)
	b, _ := PartitionGreedy(g, 4, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d: %d vs %d across identical calls", i, a[i], b[i])
		}
	}
}

func TestPartitionGreedyWeightsProtectEdges(t *testing.T) {
	// Two triangle cliques joined by one bridge; every intra-clique edge is
	// weighted far above the bridge, so a 2-way split must cut exactly the
	// bridge (the cheap edge), keeping each clique whole.
	g := NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(2, 3); err != nil { // bridge
		t.Fatal(err)
	}
	w := func(a, b int) float64 {
		if (a == 2 && b == 3) || (a == 3 && b == 2) {
			return 0.001 // low weight = cheap to cut (e.g. high latency)
		}
		return 100
	}
	assign, err := PartitionGreedy(g, 2, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePartition(g, assign, 2); err != nil {
		t.Fatal(err)
	}
	if CutEdges(g, assign) != 1 || assign[2] == assign[3] {
		t.Fatalf("assign = %v cut %d; want only the bridge cut", assign, CutEdges(g, assign))
	}
	for _, clique := range [][]int{{0, 1, 2}, {3, 4, 5}} {
		for _, v := range clique[1:] {
			if assign[v] != assign[clique[0]] {
				t.Fatalf("clique %v split: assign = %v", clique, assign)
			}
		}
	}
}

func TestValidatePartition(t *testing.T) {
	g := Line(4)
	if err := ValidatePartition(g, []int{0, 1}, 2); err == nil {
		t.Fatal("short assignment accepted")
	}
	if err := ValidatePartition(g, []int{0, 1, 2, 3}, 2); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if err := ValidatePartition(g, []int{0, 1, 1, 0}, 2); err != nil {
		t.Fatal(err)
	}
}

func TestCutEdges(t *testing.T) {
	g := Line(4) // edges 0-1, 1-2, 2-3
	if c := CutEdges(g, []int{0, 0, 1, 1}); c != 1 {
		t.Fatalf("cut = %d, want 1", c)
	}
	if c := CutEdges(g, []int{0, 1, 0, 1}); c != 3 {
		t.Fatalf("cut = %d, want 3", c)
	}
	if c := CutEdges(g, []int{0, 0, 0, 0}); c != 0 {
		t.Fatalf("cut = %d, want 0", c)
	}
}
