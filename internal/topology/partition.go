package topology

import "fmt"

// Graph partitioning for the sharded parallel event engine. A partition
// assigns every node (AS) to one shard; links crossing shards become the
// engine's only synchronization points, and the smallest cross-shard link
// latency bounds its conservative lookahead window. A good partition
// therefore (a) balances nodes so no shard straggles, (b) cuts few edges
// so barrier traffic stays small, and (c) avoids cutting low-latency
// edges, which would shrink the window every other shard must respect.

// PartitionByBlock assigns contiguous node-ID ranges to shards — the
// trivial per-AS partition. Node IDs carry no locality in generated
// graphs, so this is the stress-test baseline: near-worst-case cut for
// BA graphs, perfectly balanced, and shard-count monotone.
func PartitionByBlock(n, shards int) ([]int, error) {
	if shards < 1 || n < 0 {
		return nil, fmt.Errorf("topology: invalid partition (n=%d, shards=%d)", n, shards)
	}
	assign := make([]int, n)
	if n == 0 {
		return assign, nil
	}
	per := (n + shards - 1) / shards
	for i := range assign {
		assign[i] = i / per
	}
	return assign, nil
}

// PartitionGreedy is a latency-aware streaming min-cut heuristic (linear
// deterministic greedy): nodes are visited in BFS order from the
// highest-degree node, and each is placed on the shard maximizing
//
//	affinity(v, s) * (1 - size(s)/cap)
//
// where affinity sums w(v,u) over already-placed neighbors u on shard s.
// Ties break toward the lowest shard ID, and cap = ceil(n/shards) keeps
// the partition strictly balanced. With w = 1/latency, cutting a
// low-latency edge costs proportionally more, protecting the engine's
// lookahead window; a nil w weighs every edge equally (pure edge-cut).
func PartitionGreedy(g *Graph, shards int, w func(a, b int) float64) ([]int, error) {
	n := g.Len()
	if shards < 1 {
		return nil, fmt.Errorf("topology: invalid partition (shards=%d)", shards)
	}
	if w == nil {
		w = func(_, _ int) float64 { return 1 }
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	capPer := (n + shards - 1) / shards
	if capPer == 0 {
		capPer = 1
	}
	size := make([]int, shards)
	gain := make([]float64, shards)

	// Iterate the compiled CSR view: same neighbor order as the adjacency
	// slices (so the partition is unchanged), better locality on the 18k-AS
	// graphs where this runs once per (topology, shards) pair.
	csr := g.CSR()
	place := func(v int) {
		for s := range gain {
			gain[s] = 0
		}
		for _, u := range csr.Row(v) {
			if s := assign[u]; s >= 0 {
				gain[s] += w(v, int(u))
			}
		}
		best, bestScore := -1, 0.0
		for s := 0; s < shards; s++ {
			if size[s] >= capPer {
				continue
			}
			score := (gain[s] + 1e-9) * (1 - float64(size[s])/float64(capPer))
			if best < 0 || score > bestScore {
				best, bestScore = s, score
			}
		}
		assign[v] = best
		size[best]++
	}

	// BFS order from the highest-degree node; stray components restart
	// from their own highest-degree member, keeping the order (and thus
	// the partition) fully deterministic.
	byDegree := g.NodesByDegree()
	queue := make([]int, 0, n)
	seen := make([]bool, n)
	for _, root := range byDegree {
		if seen[root] {
			continue
		}
		seen[root] = true
		queue = append(queue, root)
		for head := len(queue) - 1; head < len(queue); head++ {
			v := queue[head]
			place(v)
			for _, u := range csr.Row(v) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, int(u))
				}
			}
		}
	}
	return assign, nil
}

// CutEdges counts the undirected edges whose endpoints live on different
// shards under assign.
func CutEdges(g *Graph, assign []int) int {
	cut := 0
	for _, e := range g.Edges() {
		if assign[e.A] != assign[e.B] {
			cut++
		}
	}
	return cut
}

// ValidatePartition checks that assign covers every node with a shard in
// [0, shards).
func ValidatePartition(g *Graph, assign []int, shards int) error {
	if len(assign) != g.Len() {
		return fmt.Errorf("topology: partition covers %d of %d nodes", len(assign), g.Len())
	}
	for v, s := range assign {
		if s < 0 || s >= shards {
			return fmt.Errorf("topology: node %d assigned to shard %d (want 0..%d)", v, s, shards-1)
		}
	}
	return nil
}
