// Command tcctl is the network user's CLI for a live traffic control
// service (see cmd/tcsd). It keeps the user's identity and certificate in
// a key file and drives the Figure-4/5 workflows over TCP:
//
//	tcctl -addr 127.0.0.1:7700 register -user demo -prefix 0.7.0.0/16 -keyfile demo.key
//	tcctl -addr 127.0.0.1:7700 deploy   -keyfile demo.key -preset rate-limit -rate 100
//	tcctl -addr 127.0.0.1:7700 update   -keyfile demo.key -component limit -rate 500
//	tcctl -addr 127.0.0.1:7700 counters -keyfile demo.key
//	tcctl -addr 127.0.0.1:7700 events   -keyfile demo.key
//	tcctl -addr 127.0.0.1:7700 watch    -n 10
//	tcctl -addr 127.0.0.1:7700 defense
package main

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"dtc/internal/auth"
	"dtc/internal/ctl"
	"dtc/internal/defense"
	"dtc/internal/live"
	"dtc/internal/nms"
	"dtc/internal/service"
)

// keyFile persists a user's credentials between invocations.
type keyFile struct {
	User     string            `json:"user"`
	Seed     []byte            `json:"seed"` // ed25519 seed
	Prefixes []string          `json:"prefixes"`
	Cert     *auth.Certificate `json:"cert"`
	Nonce    uint64            `json:"nonce"`
}

func loadKey(path string) (*keyFile, *auth.Identity, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var kf keyFile
	if err := json.Unmarshal(data, &kf); err != nil {
		return nil, nil, fmt.Errorf("bad key file: %w", err)
	}
	id, err := auth.NewIdentity(kf.User, kf.Seed)
	if err != nil {
		return nil, nil, err
	}
	return &kf, id, nil
}

func (kf *keyFile) save(path string) error {
	data, err := json.MarshalIndent(kf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "TCSP address")
	retries := flag.Int("retries", 3, "dial attempts before giving up (exponential backoff)")
	backoff := flag.Duration("backoff", 200*time.Millisecond, "initial dial retry backoff")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline (0 disables; watch streams are exempt)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tcctl [-addr host:port] register|deploy|update|counters|events|activate|deactivate|watch|defense [options]")
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	client, err := ctl.DialRetry(*addr, *retries, *backoff)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.SetTimeout(*timeout)
	tc := ctl.NewTCSPClient(client)

	switch cmd {
	case "watch":
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		count := fs.Int("n", 0, "stop after this many updates (0 = until interrupted)")
		if err := fs.Parse(args); err != nil {
			log.Fatal(err)
		}
		st, err := client.Subscribe("watch", &live.WatchParams{Count: *count})
		if err != nil {
			log.Fatal(err)
		}
		for {
			var u live.WatchUpdate
			err := st.Recv(&u)
			if err == io.EOF {
				return
			}
			if err != nil {
				log.Fatal(err)
			}
			state := "monitoring"
			if u.Mitigating {
				state = "MITIGATING"
			}
			fmt.Printf("t=%8.2fs offered=%8.1fpps discarded=%8.1fpps devices=%d score=%6.1f %s\n",
				float64(u.AtNanos)/1e9, u.OfferedPPS, u.DiscardedPPS, u.Devices, u.Score, state)
		}

	case "defense":
		var st defense.Status
		if err := client.Call("defense", nil, &st); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("owner=%s mitigating=%v disabled=%v baseline=%.1fpps score=%.1f last=%.1fpps\n",
			st.Owner, st.Mitigating, st.Disabled, st.BaselinePPS, st.Score, st.LastPPS)
		for _, tr := range st.Transitions {
			verb := "retracted"
			if tr.Mitigating {
				verb = "deployed"
			}
			fmt.Printf("  t=%8.2fs mitigation %s (%.1f pps)\n", float64(tr.At)/1e9, verb, tr.PPS)
		}
		return
	}

	switch cmd {
	case "register":
		fs := flag.NewFlagSet("register", flag.ExitOnError)
		user := fs.String("user", "", "user name (must match number-authority records)")
		prefix := fs.String("prefix", "", "owned prefix (CIDR)")
		keyPath := fs.String("keyfile", "", "where to store the key + certificate")
		if err := fs.Parse(args); err != nil {
			log.Fatal(err)
		}
		if *user == "" || *prefix == "" || *keyPath == "" {
			log.Fatal("register needs -user, -prefix and -keyfile")
		}
		seed := make([]byte, ed25519.SeedSize)
		if _, err := randRead(seed); err != nil {
			log.Fatal(err)
		}
		id, err := auth.NewIdentity(*user, seed)
		if err != nil {
			log.Fatal(err)
		}
		cert, err := tc.Register(id, []string{*prefix})
		if err != nil {
			log.Fatalf("registration failed: %v", err)
		}
		kf := &keyFile{User: *user, Seed: seed, Prefixes: []string{*prefix}, Cert: cert}
		if err := kf.save(*keyPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %q for %s (certificate serial %d) -> %s\n", *user, *prefix, cert.Serial, *keyPath)

	case "deploy":
		fs := flag.NewFlagSet("deploy", flag.ExitOnError)
		keyPath := fs.String("keyfile", "", "key file from `tcctl register`")
		preset := fs.String("preset", "firewall-udp", "service preset: firewall-udp|anti-spoofing|rate-limit|misuse-shield|traceback")
		rate := fs.Float64("rate", 100, "rate limit (packets/s) for the rate-limit preset")
		if err := fs.Parse(args); err != nil {
			log.Fatal(err)
		}
		kf, id, err := loadKey(*keyPath)
		if err != nil {
			log.Fatal(err)
		}
		var spec *service.Spec
		switch *preset {
		case "firewall-udp":
			spec = service.FirewallDrop("firewall-udp", service.MatchSpec{Proto: "udp"})
		case "anti-spoofing":
			spec = service.AntiSpoofing("anti-spoofing")
		case "rate-limit":
			spec = service.RateLimit("rate-limit", service.MatchSpec{}, *rate, *rate/10)
		case "misuse-shield":
			spec = service.ProtocolMisuseShield("misuse-shield")
		case "traceback":
			spec = service.Traceback("traceback", 100, 64, 42)
		default:
			log.Fatalf("unknown preset %q", *preset)
		}
		body, err := json.Marshal(&nms.DeployRequest{Owner: kf.User, Prefixes: kf.Prefixes, Spec: *spec})
		if err != nil {
			log.Fatal(err)
		}
		kf.Nonce++
		signed := auth.SignRequest(id, kf.Cert.Serial, kf.Nonce, body)
		results, err := tc.Deploy(signed, nil)
		if err != nil {
			log.Fatalf("deployment failed: %v", err)
		}
		if err := kf.save(*keyPath); err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			fmt.Printf("deployed %q on %s nodes %v\n", spec.Name, r.ISP, r.Nodes)
		}

	case "update":
		fs := flag.NewFlagSet("update", flag.ExitOnError)
		keyPath := fs.String("keyfile", "", "key file from `tcctl register`")
		stage := fs.String("stage", "dest", "service stage: source|dest")
		component := fs.String("component", "", "component label to update")
		rate := fs.Float64("rate", 0, "new rate (rate limiter)")
		burst := fs.Float64("burst", 0, "new burst (rate limiter)")
		threshold := fs.Uint64("threshold", 0, "new threshold (trigger)")
		addAddr := fs.String("block", "", "address to add to a blacklist")
		delAddr := fs.String("unblock", "", "address to remove from a blacklist")
		if err := fs.Parse(args); err != nil {
			log.Fatal(err)
		}
		if *component == "" {
			log.Fatal("update needs -component")
		}
		kf, id, err := loadKey(*keyPath)
		if err != nil {
			log.Fatal(err)
		}
		upd := &nms.ParamUpdate{}
		if *rate > 0 {
			upd.Rate = rate
		}
		if *burst > 0 {
			upd.Burst = burst
		}
		if *threshold > 0 {
			upd.Threshold = threshold
		}
		if *addAddr != "" {
			upd.AddAddrs = []string{*addAddr}
		}
		if *delAddr != "" {
			upd.DelAddrs = []string{*delAddr}
		}
		body, err := json.Marshal(&nms.ControlRequest{
			Owner: kf.User, Op: "update", Stage: *stage, Component: *component, Update: upd,
		})
		if err != nil {
			log.Fatal(err)
		}
		kf.Nonce++
		signed := auth.SignRequest(id, kf.Cert.Serial, kf.Nonce, body)
		results, err := tc.Control(signed, nil)
		if err != nil {
			log.Fatalf("update failed: %v", err)
		}
		if err := kf.save(*keyPath); err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			fmt.Printf("%s: parameters updated\n", r.ISP)
		}

	case "counters", "events", "activate", "deactivate":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		keyPath := fs.String("keyfile", "", "key file from `tcctl register`")
		stage := fs.String("stage", "dest", "service stage: source|dest")
		if err := fs.Parse(args); err != nil {
			log.Fatal(err)
		}
		kf, id, err := loadKey(*keyPath)
		if err != nil {
			log.Fatal(err)
		}
		op := cmd
		body, err := json.Marshal(&nms.ControlRequest{Owner: kf.User, Op: op, Stage: *stage})
		if err != nil {
			log.Fatal(err)
		}
		kf.Nonce++
		signed := auth.SignRequest(id, kf.Cert.Serial, kf.Nonce, body)
		results, err := tc.Control(signed, nil)
		if err != nil {
			log.Fatalf("%s failed: %v", cmd, err)
		}
		if err := kf.save(*keyPath); err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			switch op {
			case "counters":
				for _, c := range r.Counters {
					fmt.Printf("%s node %d: processed=%d discarded=%d\n", r.ISP, c.Node, c.Processed, c.Discarded)
				}
			case "events":
				for _, e := range r.Events {
					fmt.Printf("%s node %d [%s]: %s\n", r.ISP, e.Node, e.Component, e.Message)
				}
			default:
				fmt.Printf("%s: ok\n", r.ISP)
			}
		}

	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

// randRead fills b with cryptographic randomness.
func randRead(b []byte) (int, error) { return rand.Read(b) }
