package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dtc/internal/auth"
	"dtc/internal/packet"
)

func TestKeyFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "user.key")

	seed := make([]byte, 32)
	for i := range seed {
		seed[i] = 7
	}
	id, err := auth.NewIdentity("demo", seed)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := auth.NewIdentity("tcsp", append([]byte(nil), seed...))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := auth.IssueCertificate(ca, id, []packet.Prefix{packet.MustParsePrefix("10.0.0.0/16")}, 3, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}

	kf := &keyFile{User: "demo", Seed: seed, Prefixes: []string{"10.0.0.0/16"}, Cert: cert, Nonce: 5}
	if err := kf.save(path); err != nil {
		t.Fatal(err)
	}
	got, gotID, err := loadKey(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.User != "demo" || got.Nonce != 5 || len(got.Prefixes) != 1 {
		t.Errorf("loaded = %+v", got)
	}
	if !bytes.Equal(gotID.Pub, id.Pub) {
		t.Error("reloaded identity has different key")
	}
	if got.Cert.Serial != 3 {
		t.Errorf("cert serial = %d", got.Cert.Serial)
	}
	// Requests signed with the reloaded identity verify against the cert.
	req := auth.SignRequest(gotID, got.Cert.Serial, got.Nonce+1, []byte("x"))
	if err := auth.VerifyRequest(got.Cert, req); err != nil {
		t.Errorf("reloaded identity cannot sign: %v", err)
	}
}

func TestLoadKeyErrors(t *testing.T) {
	if _, _, err := loadKey(filepath.Join(t.TempDir(), "missing.key")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.key")
	if err := writeFile(bad, []byte("{broken")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadKey(bad); err == nil {
		t.Error("broken JSON accepted")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}
