// Command tcsd runs a live traffic-control service: a TCSP server and one
// NMS server per ISP on TCP, managing adaptive devices on a simulated
// Internet whose data plane advances in real time, with a telemetry
// pipeline, an optional closed-loop defense controller, and an HTTP
// observability endpoint (/metrics, /healthz, /debug/pprof). Use cmd/tcctl
// to register, deploy services, read counters and watch live telemetry
// while background traffic (a legitimate client plus a UDP flood) crosses
// the network.
//
//	tcsd -addr 127.0.0.1:7700 -isps 2 -http 127.0.0.1:7790 -defense
//
// The heavy lifting lives in internal/live so the identical server core
// runs under the race detector in tests.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dtc/internal/live"
	"dtc/internal/sim"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7700", "TCSP listen address (NMS servers use the following ports)")
		httpAddr  = flag.String("http", "127.0.0.1:7790", "HTTP observability address (/metrics, /healthz, pprof); empty disables")
		nISPs     = flag.Int("isps", 2, "number of ISPs")
		seedV     = flag.Uint64("seed", 1, "simulation seed")
		telemetry = flag.Duration("telemetry", 500*time.Millisecond, "device snapshot/report period")
		defense   = flag.Bool("defense", false, "enable the closed-loop defense controller for the demo block")
		limit     = flag.Float64("defense-limit", 100, "mitigation rate limit (packets/s per device)")
		legit     = flag.Float64("legit", 50, "legitimate background traffic (pps, negative disables)")
		attack    = flag.Float64("attack", 500, "attack background traffic (pps, negative disables)")
		pipeline  = flag.Int("pipeline", 8, "per-connection request window on control servers (1 = sequential)")
	)
	flag.Parse()

	srv, err := live.Start(live.Config{
		Addr:            *addr,
		HTTPAddr:        *httpAddr,
		ISPs:            *nISPs,
		Seed:            *seedV,
		TelemetryPeriod: sim.Time(*telemetry),
		Defense:         *defense,
		DefenseLimitPPS: *limit,
		LegitPPS:        *legit,
		AttackPPS:       *attack,
		Pipelining:      *pipeline,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	report := time.NewTicker(5 * time.Second)
	defer report.Stop()
	for {
		select {
		case <-report.C:
			legit, attack := srv.VictimDelivered()
			st := srv.Defense()
			log.Printf("victim: legit=%d attack=%d delivered; defense: mitigating=%v baseline=%.0fpps score=%.0f",
				legit, attack, st.Mitigating, st.BaselinePPS, st.Score)
		case <-stop:
			log.Printf("shutting down")
			return
		}
	}
}
