// Command tcsd runs a live traffic-control service: a TCSP server and one
// NMS server per ISP on TCP loopback, managing adaptive devices on a
// simulated Internet whose data plane advances in real time. Use cmd/tcctl
// to register, deploy services and read counters while background traffic
// (a legitimate client plus a UDP flood) crosses the network.
//
//	tcsd -addr 127.0.0.1:7700 -isps 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"dtc/internal/auth"
	"dtc/internal/ctl"
	"dtc/internal/netsim"
	"dtc/internal/nms"
	"dtc/internal/ownership"
	"dtc/internal/packet"
	"dtc/internal/sim"
	"dtc/internal/tcsp"
	"dtc/internal/topology"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7700", "TCSP listen address (NMS servers use the following ports)")
		nISPs = flag.Int("isps", 2, "number of ISPs")
		seed  = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if err := run(*addr, *nISPs, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, nISPs int, seed uint64) error {
	if nISPs < 1 {
		return fmt.Errorf("need at least one ISP")
	}
	// World: a line of 4 routers per ISP. The user-facing address plan is
	// printed below.
	nodesPerISP := 4
	n := nISPs * nodesPerISP
	g := topology.Line(n)
	s := sim.New(seed)
	network, err := netsim.New(s, g, netsim.DefaultLink)
	if err != nil {
		return err
	}
	authority := ownership.NewRegistry()
	// The demo user may claim the last node's block; the authority is
	// seeded accordingly (in production this is ARIN/RIPE data).
	victimPfx := netsim.NodePrefix(n - 1)
	if err := authority.Allocate(victimPfx, "demo"); err != nil {
		return err
	}

	caID, err := auth.NewIdentity("tcsp", nil)
	if err != nil {
		return err
	}
	// The simulation advances on wall time; one mutex serializes data
	// plane and control plane.
	var mu sync.Mutex
	start := time.Now()
	clock := func() int64 { return int64(time.Since(start) / time.Second) }
	tc := tcsp.New(caID, authority, clock)

	locked := func(h ctl.Handler) ctl.Handler {
		return func(method string, payload json.RawMessage) (any, error) {
			mu.Lock()
			defer mu.Unlock()
			return h(method, payload)
		}
	}

	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return err
	}
	var port int
	if _, err := fmt.Sscanf(portStr, "%d", &port); err != nil {
		return err
	}

	for i := 0; i < nISPs; i++ {
		name := fmt.Sprintf("isp%d", i+1)
		var nodes []int
		for j := 0; j < nodesPerISP; j++ {
			nodes = append(nodes, i*nodesPerISP+j)
		}
		m, err := nms.New(name, network, nodes, tc.PublicKey(), clock)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", fmt.Sprintf("%s:%d", host, port+1+i))
		if err != nil {
			return err
		}
		srv := ctl.NewServer(ln, locked(ctl.NMSHandler(m)))
		defer srv.Close()
		if err := tc.AddISP(name, m); err != nil {
			return err
		}
		log.Printf("NMS %s listening on %s (nodes %v)", name, ln.Addr(), nodes)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := ctl.NewServer(ln, locked(ctl.TCSPHandler(tc)))
	defer srv.Close()
	log.Printf("TCSP listening on %s", ln.Addr())
	log.Printf("demo user owns %v — e.g.: tcctl -addr %s register -user demo -prefix %v -keyfile /tmp/demo.key",
		victimPfx, ln.Addr(), victimPfx)

	// Background traffic: a legitimate client on node 0 and a UDP flood
	// from node 1, both aimed at a host in the demo user's block.
	mu.Lock()
	victim, err := network.AttachHost(n - 1)
	if err != nil {
		mu.Unlock()
		return err
	}
	legit, err := network.AttachHost(0)
	if err != nil {
		mu.Unlock()
		return err
	}
	agent, err := network.AttachHost(min(1, n-1))
	if err != nil {
		mu.Unlock()
		return err
	}
	legit.StartCBR(0, 50, func(uint64) *packet.Packet {
		return &packet.Packet{Src: legit.Addr, Dst: victim.Addr, Proto: packet.TCP, DstPort: 80, Size: 200, Kind: packet.KindLegit}
	})
	agent.StartCBR(0, 500, func(uint64) *packet.Packet {
		return &packet.Packet{Src: agent.Addr, Dst: victim.Addr, Proto: packet.UDP, DstPort: 9, Size: 400, Kind: packet.KindAttack}
	})
	mu.Unlock()
	log.Printf("background traffic: legit 50 pps (TCP:80), attack 500 pps (UDP:9) -> %v", victim.Addr)

	// Advance simulated time in step with wall time.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	report := time.NewTicker(5 * time.Second)
	defer report.Stop()
	for {
		select {
		case <-tick.C:
			mu.Lock()
			if _, err := s.Run(sim.Time(time.Since(start))); err != nil {
				mu.Unlock()
				return err
			}
			mu.Unlock()
		case <-report.C:
			mu.Lock()
			st := network.Stats
			log.Printf("victim: legit=%d attack=%d delivered; filter drops legit=%d attack=%d",
				victim.Delivered[packet.KindLegit], victim.Delivered[packet.KindAttack],
				st.Drops[netsim.DropFilter][packet.KindLegit].Packets,
				st.Drops[netsim.DropFilter][packet.KindAttack].Packets)
			mu.Unlock()
		case <-stop:
			log.Printf("shutting down")
			return nil
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
