// Command benchjson converts `go test -bench -benchmem` output read from
// stdin into a deterministic JSON file mapping benchmark name to ns/op,
// B/op and allocs/op. The Makefile's bench target uses it to record the
// per-PR performance trajectory (BENCH_PR1.json and successors).
//
// Usage:
//
//	go test -bench='...' -benchmem -run='^$' . | go run ./cmd/benchjson -out BENCH_PR1.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result holds the benchmem metrics of one benchmark.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches e.g.
//
//	BenchmarkEventQueue-8   13161582   88.37 ns/op   0 B/op   0 allocs/op
//
// The GOMAXPROCS suffix and the memory columns are optional.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			if strings.HasPrefix(line, "--- FAIL") || strings.HasPrefix(line, "FAIL") {
				return nil, fmt.Errorf("benchmark run failed: %s", line)
			}
			continue
		}
		res := Result{}
		res.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			res.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
			res.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		out[m[1]] = res
	}
	return out, sc.Err()
}

func main() {
	outPath := flag.String("out", "", "output JSON path (default stdout)")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	// json.MarshalIndent sorts map keys, so the file is reproducible.
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *outPath == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(results), *outPath)
}
