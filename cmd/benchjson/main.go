// Command benchjson converts `go test -bench -benchmem` output read from
// stdin into a deterministic JSON file mapping benchmark name to ns/op,
// B/op, allocs/op and any b.ReportMetric custom metrics (keyed by unit,
// lower-is-better by repo convention). The Makefile's bench target uses
// it to record the per-PR performance trajectory (BENCH_PR1.json and
// successors).
// Repeated samples of one benchmark (from -count=N) fold to the
// per-metric minimum: on a shared machine, scheduling noise only ever
// adds time, so the fastest sample is the robust estimate.
//
// With -old it instead compares a previously recorded file against new
// results (stdin, or a second recorded file via -new) and prints per-
// benchmark ns/op and allocs/op deltas, exiting nonzero if any shared
// benchmark regressed by more than 20%.
//
// Usage:
//
//	go test -bench='...' -benchmem -run='^$' . | go run ./cmd/benchjson -out BENCH_PR1.json
//	go test -bench='...' -benchmem -run='^$' . | go run ./cmd/benchjson -old BENCH_PR1.json
//	go run ./cmd/benchjson -old BENCH_PR1.json -new BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result holds the benchmem metrics of one benchmark, plus any custom
// metrics it reported via b.ReportMetric (keyed by unit, e.g. "ns/flow"
// or "bytes/host"). Custom metrics are lower-is-better by repo convention
// — they min-fold and regression-gate like the built-ins — except
// throughput units ending in "/s" (e.g. "ops/s"), which are
// higher-is-better: repeats fold to the maximum and the regression gate
// inverts, failing when throughput drops by more than the limit.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Custom      map[string]float64 `json:"custom,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkEventQueue-8   13161582   88.37 ns/op   0 B/op   0 allocs/op
//
// The GOMAXPROCS suffix and the memory columns are optional. Custom
// metrics reported via b.ReportMetric (e.g. "202.1 ns/flow") sit between
// ns/op and the memory columns; the lazy group captures them for
// sub-parsing while still yielding B/op and allocs/op to the anchored
// tail when those columns are present.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op((?:\s+[\d.]+ [^\s/]+/\S+)*?)(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?\s*$`)

// customMetric splits the captured custom-metric run into value/unit pairs.
var customMetric = regexp.MustCompile(`([\d.]+) (\S+)`)

func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			if strings.HasPrefix(line, "--- FAIL") || strings.HasPrefix(line, "FAIL") {
				return nil, fmt.Errorf("benchmark run failed: %s", line)
			}
			continue
		}
		res := Result{}
		res.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		for _, cm := range customMetric.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(cm[1], 64)
			if err != nil {
				continue
			}
			if res.Custom == nil {
				res.Custom = make(map[string]float64)
			}
			res.Custom[cm[2]] = v
		}
		if m[4] != "" {
			res.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			res.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if prev, seen := out[m[1]]; seen {
			res.NsPerOp = math.Min(res.NsPerOp, prev.NsPerOp)
			res.BytesPerOp = math.Min(res.BytesPerOp, prev.BytesPerOp)
			res.AllocsPerOp = math.Min(res.AllocsPerOp, prev.AllocsPerOp)
			for unit, v := range prev.Custom {
				if cur, ok := res.Custom[unit]; ok {
					if higherIsBetter(unit) {
						res.Custom[unit] = math.Max(cur, v)
					} else {
						res.Custom[unit] = math.Min(cur, v)
					}
				} else {
					if res.Custom == nil {
						res.Custom = make(map[string]float64)
					}
					res.Custom[unit] = v
				}
			}
		}
		out[m[1]] = res
	}
	return out, sc.Err()
}

// regressionLimit is the fractional slowdown tolerated before compare
// mode fails the run.
const regressionLimit = 0.20

// delta formats a fractional change, e.g. +12.3% or -4.0%.
func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "±0.0%"
		}
		return "new>0" // from zero, any growth is an infinite ratio
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

// regressed reports whether a metric got more than regressionLimit worse.
// Growth from an exact zero (e.g. 0 allocs/op becoming nonzero) always
// counts: the zero was the point.
func regressed(old, new float64) bool {
	if old == 0 {
		return new > 0
	}
	return (new-old)/old > regressionLimit
}

// higherIsBetter classifies a custom-metric unit: throughput units
// ("ops/s", "reqs/s", ...) grow when things improve; everything else
// (latency, bytes) follows the repo's lower-is-better convention.
func higherIsBetter(unit string) bool { return strings.HasSuffix(unit, "/s") }

// regressedUnit applies the direction-aware regression rule for a custom
// metric: throughput fails when it falls, everything else when it grows.
func regressedUnit(unit string, old, new float64) bool {
	if higherIsBetter(unit) {
		if old == 0 {
			return false // no baseline throughput to defend
		}
		return (old-new)/old > regressionLimit
	}
	return regressed(old, new)
}

// compare prints an old-vs-new table to w and reports whether every shared
// benchmark stayed within the regression limit on ns/op, allocs/op and
// every shared custom metric — direction-aware: "/s" throughput units must
// not fall, everything else (ns/flow, bytes/host, ...) must not grow.
func compare(w io.Writer, old, new map[string]Result) bool {
	names := make([]string, 0, len(new))
	for name := range new {
		names = append(names, name)
	}
	sort.Strings(names)
	ok := true
	for _, name := range names {
		n := new[name]
		o, shared := old[name]
		if !shared {
			fmt.Fprintf(w, "%-40s %12.1f ns/op %10.0f allocs/op   (new)\n", name, n.NsPerOp, n.AllocsPerOp)
			continue
		}
		mark := ""
		if regressed(o.NsPerOp, n.NsPerOp) || regressed(o.AllocsPerOp, n.AllocsPerOp) {
			ok = false
			mark = "   REGRESSION"
		}
		var custom strings.Builder
		units := make([]string, 0, len(n.Custom))
		for unit := range n.Custom {
			if _, both := o.Custom[unit]; both {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			ov, nv := o.Custom[unit], n.Custom[unit]
			if regressedUnit(unit, ov, nv) {
				ok = false
				mark = "   REGRESSION"
			}
			fmt.Fprintf(&custom, "   %.1f -> %.1f %s (%s)", ov, nv, unit, delta(ov, nv))
		}
		fmt.Fprintf(w, "%-40s %12.1f -> %-12.1f ns/op (%s)   %.0f -> %.0f allocs/op (%s)%s%s\n",
			name, o.NsPerOp, n.NsPerOp, delta(o.NsPerOp, n.NsPerOp),
			o.AllocsPerOp, n.AllocsPerOp, delta(o.AllocsPerOp, n.AllocsPerOp), custom.String(), mark)
	}
	for name := range old {
		if _, still := new[name]; !still {
			fmt.Fprintf(w, "%-40s (dropped)\n", name)
		}
	}
	return ok
}

func loadResults(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out map[string]Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func main() {
	outPath := flag.String("out", "", "output JSON path (default stdout)")
	oldPath := flag.String("old", "", "baseline JSON to compare against; exit 1 on >20% ns/op or allocs/op regression")
	newPath := flag.String("new", "", "recorded JSON to compare instead of parsing stdin (requires -old)")
	flag.Parse()

	var results map[string]Result
	var err error
	if *newPath != "" {
		if *oldPath == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -new requires -old")
			os.Exit(1)
		}
		results, err = loadResults(*newPath)
	} else {
		results, err = parse(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *oldPath != "" {
		old, err := loadResults(*oldPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if !compare(os.Stdout, old, results) {
			fmt.Fprintf(os.Stderr, "benchjson: regression beyond %.0f%% vs %s\n", 100*regressionLimit, *oldPath)
			os.Exit(1)
		}
		return
	}
	// json.MarshalIndent sorts map keys, so the file is reproducible.
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *outPath == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(results), *outPath)
}
