package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
BenchmarkEventQueue-8   13161582   88.37 ns/op   0 B/op   0 allocs/op
BenchmarkNoMem   100   250.5 ns/op
PASS
`
	res, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r := res["BenchmarkEventQueue"]; r.NsPerOp != 88.37 || r.AllocsPerOp != 0 {
		t.Errorf("EventQueue = %+v", r)
	}
	if r := res["BenchmarkNoMem"]; r.NsPerOp != 250.5 {
		t.Errorf("NoMem = %+v", r)
	}
	custom := "BenchmarkSweepE10/substrate-serial  6508  363708 ns/op  202.1 ns/flow  219681 B/op  3136 allocs/op\n"
	res, err = parse(strings.NewReader(custom))
	if err != nil {
		t.Fatal(err)
	}
	if r := res["BenchmarkSweepE10/substrate-serial"]; r.NsPerOp != 363708 || r.BytesPerOp != 219681 || r.AllocsPerOp != 3136 ||
		r.Custom["ns/flow"] != 202.1 {
		t.Errorf("custom-metric line = %+v", r)
	}
	// Custom metrics without -benchmem columns still parse.
	res, err = parse(strings.NewReader("BenchmarkHybridMemory-8  1  5000 ns/op  19.2 bytes/host  52631578.9 hosts/GB\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r := res["BenchmarkHybridMemory"]; r.Custom["bytes/host"] != 19.2 || r.Custom["hosts/GB"] != 52631578.9 {
		t.Errorf("memless custom metrics = %+v", r)
	}
	if _, err := parse(strings.NewReader("--- FAIL: TestX\n")); err == nil {
		t.Error("FAIL line not rejected")
	}
}

func TestParseKeepsMinAcrossRepeats(t *testing.T) {
	// -count=N emits each benchmark N times; the per-metric minimum is the
	// noise-robust sample on a shared machine.
	in := `BenchmarkX-8   100   120.0 ns/op   30.5 ns/flow   64 B/op   2 allocs/op
BenchmarkX-8   100   95.5 ns/op   28.0 ns/flow   80 B/op   1 allocs/op
BenchmarkX-8   100   110.0 ns/op   33.0 ns/flow   48 B/op   3 allocs/op
`
	res, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r := res["BenchmarkX"]; r.NsPerOp != 95.5 || r.BytesPerOp != 48 || r.AllocsPerOp != 1 || r.Custom["ns/flow"] != 28.0 {
		t.Errorf("min-fold = %+v, want {95.5 48 1 ns/flow:28}", r)
	}
}

func TestRegressed(t *testing.T) {
	cases := []struct {
		old, new float64
		want     bool
	}{
		{100, 119, false}, // within 20%
		{100, 121, true},  // beyond 20%
		{100, 50, false},  // improvement
		{0, 0, false},     // still zero
		{0, 1, true},      // zero-alloc guarantee lost
	}
	for _, c := range cases {
		if got := regressed(c.old, c.new); got != c.want {
			t.Errorf("regressed(%v, %v) = %v, want %v", c.old, c.new, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	old := map[string]Result{
		"BenchmarkA":    {NsPerOp: 100, AllocsPerOp: 2},
		"BenchmarkB":    {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkGone": {NsPerOp: 1},
	}

	var b strings.Builder
	ok := compare(&b, old, map[string]Result{
		"BenchmarkA":   {NsPerOp: 90, AllocsPerOp: 2},
		"BenchmarkB":   {NsPerOp: 110, AllocsPerOp: 0},
		"BenchmarkNew": {NsPerOp: 5},
	})
	out := b.String()
	if !ok {
		t.Errorf("improvements flagged as regression:\n%s", out)
	}
	for _, want := range []string{"BenchmarkA", "(new)", "(dropped)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	if compare(&b, old, map[string]Result{"BenchmarkA": {NsPerOp: 130, AllocsPerOp: 2}}) {
		t.Error("30% ns/op slowdown not flagged")
	}
	if !strings.Contains(b.String(), "REGRESSION") {
		t.Errorf("REGRESSION marker missing:\n%s", b.String())
	}

	b.Reset()
	if compare(&b, old, map[string]Result{"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 1}}) {
		t.Error("lost zero-alloc guarantee not flagged")
	}
}

func TestCompareCustomMetrics(t *testing.T) {
	old := map[string]Result{
		"BenchmarkHybridMemory": {NsPerOp: 100, Custom: map[string]float64{"bytes/host": 19.0}},
	}
	var b strings.Builder
	if !compare(&b, old, map[string]Result{
		"BenchmarkHybridMemory": {NsPerOp: 100, Custom: map[string]float64{"bytes/host": 19.5, "extra/op": 7}},
	}) {
		t.Errorf("2.6%% custom growth flagged as regression:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "bytes/host") {
		t.Errorf("custom metric missing from output:\n%s", b.String())
	}

	b.Reset()
	if compare(&b, old, map[string]Result{
		"BenchmarkHybridMemory": {NsPerOp: 100, Custom: map[string]float64{"bytes/host": 25.0}},
	}) {
		t.Error("31% bytes/host growth not flagged")
	}
	if !strings.Contains(b.String(), "REGRESSION") {
		t.Errorf("REGRESSION marker missing:\n%s", b.String())
	}
}

func TestParseKeepsMaxForThroughputRepeats(t *testing.T) {
	// "/s" units are higher-is-better: across -count=N repeats the best
	// throughput sample wins, while lower-is-better units still min-fold.
	in := `BenchmarkLoad-8   10   1000.0 ns/op   5200 ops/s   30.0 ns/flow
BenchmarkLoad-8   10   1200.0 ns/op   6100 ops/s   28.0 ns/flow
BenchmarkLoad-8   10   1100.0 ns/op   4800 ops/s   33.0 ns/flow
`
	res, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r := res["BenchmarkLoad"]
	if r.Custom["ops/s"] != 6100 {
		t.Errorf("ops/s folded to %v, want max 6100", r.Custom["ops/s"])
	}
	if r.Custom["ns/flow"] != 28.0 {
		t.Errorf("ns/flow folded to %v, want min 28", r.Custom["ns/flow"])
	}
}

func TestRegressedUnitDirection(t *testing.T) {
	cases := []struct {
		unit     string
		old, new float64
		want     bool
	}{
		{"ops/s", 1000, 850, false},  // -15% throughput: within limit
		{"ops/s", 1000, 700, true},   // -30% throughput: regression
		{"ops/s", 1000, 5000, false}, // improvement
		{"ops/s", 0, 0, false},       // no baseline to defend
		{"ns/flow", 100, 130, true},  // lower-is-better still gates growth
		{"ns/flow", 100, 70, false},
	}
	for _, c := range cases {
		if got := regressedUnit(c.unit, c.old, c.new); got != c.want {
			t.Errorf("regressedUnit(%s, %v, %v) = %v, want %v", c.unit, c.old, c.new, got, c.want)
		}
	}
}

func TestCompareThroughputMetric(t *testing.T) {
	old := map[string]Result{
		"BenchmarkCtl": {NsPerOp: 100, Custom: map[string]float64{"ops/s": 10000}},
	}
	var b strings.Builder
	if !compare(&b, old, map[string]Result{
		"BenchmarkCtl": {NsPerOp: 100, Custom: map[string]float64{"ops/s": 14000}},
	}) {
		t.Errorf("throughput gain flagged as regression:\n%s", b.String())
	}

	b.Reset()
	if compare(&b, old, map[string]Result{
		"BenchmarkCtl": {NsPerOp: 100, Custom: map[string]float64{"ops/s": 7000}},
	}) {
		t.Error("30% throughput drop not flagged")
	}
	if !strings.Contains(b.String(), "REGRESSION") {
		t.Errorf("REGRESSION marker missing:\n%s", b.String())
	}
}
