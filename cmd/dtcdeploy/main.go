// Command dtcdeploy brings up a real multi-process deployment of the
// traffic-control service on localhost: a TCSP process, N ISP NMS
// processes (each with its own simulated data plane), an attack master,
// and fleets of user agents — every one a separate OS process speaking the
// ctl protocol over loopback TCP. The same binary plays every role: the
// orchestrator re-executes itself with DTC_DEPLOY_ROLE set, collects
// per-role logs, waits for readiness probes, drives the scripted
// control-plane workload, prints the merged latency/throughput report, and
// tears everything down (verifying no process survives).
//
//	dtcdeploy -isps 4 -users 1000 -procs 4 -updates 3 -attack
//
// Add -hold to keep the deployment running after the workload finishes
// (until interrupted) for interactive poking with cmd/tcctl against the
// printed TCSP address.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dtc/internal/deploy"
)

func main() {
	if deploy.IsChild() {
		if err := deploy.RunChild(); err != nil {
			fmt.Fprintf(os.Stderr, "dtcdeploy role: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var (
		isps     = flag.Int("isps", 4, "ISP NMS processes")
		nodes    = flag.Int("nodes", 4, "simulated routers per ISP")
		users    = flag.Int("users", 1000, "total user agents (connections)")
		procs    = flag.Int("procs", 4, "user-agent processes to spread agents across")
		updates  = flag.Int("updates", 3, "parameter updates per agent")
		attack   = flag.Bool("attack", true, "launch the attack master")
		pps      = flag.Float64("pps", 500, "attack rate per ISP world")
		mux      = flag.Bool("mux", true, "user agents use the batched multiplexed client")
		pipeline = flag.Int("pipeline", 8, "server per-connection request window")
		basePort = flag.Int("base-port", 0, "deterministic base port (0 = ephemeral)")
		logDir   = flag.String("log-dir", "", "per-role log directory (default: temp dir)")
		hold     = flag.Bool("hold", false, "keep the deployment up after the workload, until interrupted")
		timeout  = flag.Duration("timeout", 5*time.Minute, "workload completion bound")
	)
	flag.Parse()

	userProcs := *procs
	if userProcs < 1 {
		userProcs = 1
	}
	perProc := (*users + userProcs - 1) / userProcs

	d, err := deploy.Launch(deploy.Spec{
		ISPs:         *isps,
		NodesPerISP:  *nodes,
		UserProcs:    userProcs,
		UsersPerProc: perProc,
		Updates:      *updates,
		Attack:       *attack,
		AttackPPS:    *pps,
		MuxUsers:     *mux,
		Pipelining:   *pipeline,
		BasePort:     *basePort,
		LogDir:       *logDir,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Teardown()
	log.Printf("deployment up: tcsp=%s logs=%s", d.TCSP.Addr, d.LogDir)

	res, err := d.WaitUserStats(*timeout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	if *hold {
		log.Printf("holding deployment (tcsp=%s); interrupt to tear down", d.TCSP.Addr)
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		<-stop
	}
	if err := d.Teardown(); err != nil {
		log.Fatal(err)
	}
	log.Printf("teardown clean: no orphan processes")
}
