// Command ddosim runs the paper-reproduction experiments and prints their
// tables (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// recorded results).
//
// Usage:
//
//	ddosim -list                 # show all experiment IDs
//	ddosim -exp e2               # run one experiment at full size
//	ddosim -all                  # run everything
//	ddosim -all -quick -seed 7   # fast versions, custom seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dtc/internal/experiment"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		exp      = flag.String("exp", "", "experiment ID to run (e.g. f1, e2)")
		all      = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "shrink workloads (CI-sized runs)")
		seed     = flag.Uint64("seed", 42, "random seed")
		parallel = flag.Int("parallel", 1, "worker goroutines for -all (wall-clock-measuring experiments prefer 1)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.List() {
			fmt.Printf("%-4s %s\n", id, experiment.Describe(id))
		}
		return
	}
	opts := experiment.Options{Quick: *quick, Seed: *seed}
	var ids []string
	switch {
	case *all:
		ids = experiment.List()
	case *exp != "":
		ids = []string{*exp}
	default:
		flag.Usage()
		os.Exit(2)
	}
	start := time.Now()
	tables, errs := experiment.RunMany(ids, opts, *parallel)
	failed := false
	for i, id := range ids {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "ddosim: %s: %v\n", id, errs[i])
			failed = true
			continue
		}
		fmt.Printf("== %s: %s\n", id, experiment.Describe(id))
		if *csv {
			fmt.Println(tables[i].CSV())
		} else {
			fmt.Println(tables[i])
		}
	}
	fmt.Printf("(%d experiments in %v)\n", len(ids), time.Since(start).Round(time.Millisecond))
	if failed {
		os.Exit(1)
	}
}
