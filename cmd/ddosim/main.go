// Command ddosim runs the paper-reproduction experiments and prints their
// tables (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// recorded results).
//
// Usage:
//
//	ddosim -list                 # show all experiment IDs
//	ddosim -exp e2               # run one experiment at full size
//	ddosim -all                  # run everything
//	ddosim -all -quick -seed 7   # fast versions, custom seed
//	ddosim -exp e10 -workers 8   # parallel sweep points, same bytes out
//	ddosim -exp e1 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dtc/internal/experiment"
)

func main() {
	// All work happens in run so deferred profile writers fire before the
	// process exits; os.Exit in main would skip them.
	os.Exit(run())
}

func run() int {
	var (
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		exp        = flag.String("exp", "", "experiment ID to run (e.g. f1, e2)")
		all        = flag.Bool("all", false, "run every experiment")
		quick      = flag.Bool("quick", false, "shrink workloads (CI-sized runs)")
		seed       = flag.Uint64("seed", 42, "random seed")
		parallel   = flag.Int("parallel", 1, "concurrent experiments for -all (wall-clock-measuring experiments prefer 1)")
		workers    = flag.Int("workers", 0, "concurrent sweep points within an experiment; 0 = GOMAXPROCS. Tables are byte-identical at any value")
		timeout    = flag.Duration("timeout", 0, "per-experiment deadline (e.g. 2m); 0 = none")
		shards     = flag.Int("shards", 0, "shard counts for sharded-engine experiments (e13): 0 = default ladder {1,2,4,8}, N>1 compares {1,N}, 1 = single-shard reference")
		faultseed  = flag.Uint64("faultseed", 7, "seed for fault schedules in fault-injection experiments (e14); independent of -seed")
		faultrate  = flag.Float64("faultrate", 0, "override e14's fault-rate ladder with {0, rate} expected faults per class per simulated second; 0 = default ladder")
		hybrid     = flag.Bool("hybrid", true, "run hybrid-substrate experiments (e15) with fluid background + packet cone; -hybrid=false forces the all-packet reference (quick sizes only)")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.List() {
			fmt.Printf("%-4s %s\n", id, experiment.Describe(id))
		}
		return 0
	}
	opts := experiment.Options{Quick: *quick, Seed: *seed, Workers: *workers, Timeout: *timeout, Shards: *shards, FaultSeed: *faultseed, FaultRate: *faultrate, PacketOnly: !*hybrid}
	var ids []string
	switch {
	case *all:
		ids = experiment.List()
	case *exp != "":
		ids = []string{*exp}
	default:
		flag.Usage()
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddosim:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ddosim:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ddosim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ddosim:", err)
			}
		}()
	}

	start := time.Now()
	tables, errs := experiment.RunMany(ids, opts, *parallel)
	failed := false
	for i, id := range ids {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "ddosim: %s: %v\n", id, errs[i])
			failed = true
			continue
		}
		fmt.Printf("== %s: %s\n", id, experiment.Describe(id))
		if *csv {
			fmt.Println(tables[i].CSV())
		} else {
			fmt.Println(tables[i])
		}
	}
	// Timing goes to stderr: stdout carries only the tables, so runs are
	// byte-comparable (e.g. -workers 1 vs -workers 8).
	fmt.Fprintf(os.Stderr, "(%d experiments in %v)\n", len(ids), time.Since(start).Round(time.Millisecond))
	if failed {
		return 1
	}
	return 0
}
