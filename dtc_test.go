package dtc

import (
	"testing"

	"dtc/internal/netsim"
	"dtc/internal/nms"
	"dtc/internal/packet"
	"dtc/internal/service"
	"dtc/internal/sim"
	"dtc/internal/topology"
)

func lineWorld(t *testing.T, n int, partition [][]int) *World {
	t.Helper()
	w, err := NewWorld(WorldConfig{Topology: topology.Line(n), Seed: 1, ISPPartition: partition})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(WorldConfig{}); err == nil {
		t.Error("nil topology accepted")
	}
	w := lineWorld(t, 4, nil)
	if len(w.ISPNames()) != 1 || w.ISPNames()[0] != "isp1" {
		t.Errorf("ISPs = %v", w.ISPNames())
	}
	w2 := lineWorld(t, 4, [][]int{{0, 1}, {2, 3}})
	if len(w2.ISPNames()) != 2 {
		t.Errorf("ISPs = %v", w2.ISPNames())
	}
}

func TestNewUserRegistersAndCertifies(t *testing.T) {
	w := lineWorld(t, 4, nil)
	u, err := w.NewUser("acme", netsim.NodePrefix(3))
	if err != nil {
		t.Fatal(err)
	}
	if u.Cert.Owner != "acme" {
		t.Errorf("cert owner = %q", u.Cert.Owner)
	}
	if err := u.Cert.Verify(w.TCSP.PublicKey(), 0); err != nil {
		t.Error(err)
	}
	// Prefix conflicts propagate.
	if _, err := w.NewUser("other", netsim.NodePrefix(3)); err == nil {
		t.Error("double allocation accepted")
	}
	if _, err := w.NewUser("empty"); err == nil {
		t.Error("user without prefixes accepted")
	}
}

func TestEndToEndDeployAndFilter(t *testing.T) {
	w := lineWorld(t, 4, [][]int{{0, 1}, {2, 3}})
	u, err := w.NewUser("acme", netsim.NodePrefix(3))
	if err != nil {
		t.Fatal(err)
	}
	results, err := u.Deploy(service.FirewallDrop("fw", service.MatchSpec{DstPort: 666}), nil, nms.Scope{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	src, _ := w.Net.AttachHost(0)
	dst, _ := w.Net.AttachHost(3)
	src.Send(0, &packet.Packet{Src: src.Addr, Dst: dst.Addr, DstPort: 666, Size: 100})
	src.Send(0, &packet.Packet{Src: src.Addr, Dst: dst.Addr, DstPort: 80, Size: 100})
	if _, err := w.Sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if dst.Delivered[packet.KindLegit] != 1 {
		t.Errorf("delivered = %d", dst.Delivered[packet.KindLegit])
	}
	p, d, err := u.Counters("dest")
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 || p < 2 {
		t.Errorf("counters processed=%d discarded=%d", p, d)
	}
}

func TestActivateDeactivate(t *testing.T) {
	w := lineWorld(t, 3, nil)
	u, err := w.NewUser("acme", netsim.NodePrefix(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Deploy(service.FirewallDrop("fw", service.MatchSpec{}), nil, nms.Scope{}); err != nil {
		t.Fatal(err)
	}
	src, _ := w.Net.AttachHost(0)
	dst, _ := w.Net.AttachHost(2)

	if err := u.Deactivate("dest"); err != nil {
		t.Fatal(err)
	}
	src.Send(0, &packet.Packet{Src: src.Addr, Dst: dst.Addr, Size: 100})
	if _, err := w.Sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if dst.Delivered[packet.KindLegit] != 1 {
		t.Error("deactivated drop-all filtered traffic")
	}
	if err := u.Activate("dest"); err != nil {
		t.Fatal(err)
	}
	src.Send(w.Sim.Now(), &packet.Packet{Src: src.Addr, Dst: dst.Addr, Size: 100})
	if _, err := w.Sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	if dst.Delivered[packet.KindLegit] != 1 {
		t.Error("activated drop-all did not filter")
	}
}

func TestDeployDirectWithRelay(t *testing.T) {
	w := lineWorld(t, 4, [][]int{{0, 1}, {2, 3}})
	w.ISPs["isp1"].AddPeer(w.ISPs["isp2"])
	u, err := w.NewUser("acme", netsim.NodePrefix(3))
	if err != nil {
		t.Fatal(err)
	}
	results, err := u.DeployDirect("isp1", true, service.FirewallDrop("fw", service.MatchSpec{DstPort: 666}), nil, nms.Scope{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("relay results = %v", results)
	}
	if _, err := u.DeployDirect("nope", false, service.FirewallDrop("fw", service.MatchSpec{}), nil, nms.Scope{}); err == nil {
		t.Error("unknown ISP accepted")
	}
}

func TestEventsSurface(t *testing.T) {
	w := lineWorld(t, 3, nil)
	u, err := w.NewUser("acme", netsim.NodePrefix(2))
	if err != nil {
		t.Fatal(err)
	}
	spec := service.AutoRateLimit("auto", service.MatchSpec{}, 100, 3, 10000, 1000)
	if _, err := u.Deploy(spec, nil, nms.Scope{Nodes: []int{2}}); err != nil {
		t.Fatal(err)
	}
	src, _ := w.Net.AttachHost(0)
	dst, _ := w.Net.AttachHost(2)
	for i := 0; i < 10; i++ {
		src.Send(0, &packet.Packet{Src: src.Addr, Dst: dst.Addr, Size: 100})
	}
	if _, err := w.Sim.RunAll(); err != nil {
		t.Fatal(err)
	}
	events, err := u.Events()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Error("no events after trigger fire")
	}
}

func TestWorldDeterminism(t *testing.T) {
	run := func() uint64 {
		w := lineWorld(t, 4, nil)
		u, err := w.NewUser("acme", netsim.NodePrefix(3))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u.Deploy(service.RateLimit("rl", service.MatchSpec{}, 100, 10), nil, nms.Scope{}); err != nil {
			t.Fatal(err)
		}
		src, _ := w.Net.AttachHost(0)
		dst, _ := w.Net.AttachHost(3)
		s := src.StartPoisson(0, 1000, func(i uint64) *packet.Packet {
			return &packet.Packet{Src: src.Addr, Dst: dst.Addr, Size: 100}
		})
		w.Sim.AfterFunc(sim.Second, func(sim.Time) { s.Stop(); w.Sim.Stop() })
		if _, err := w.Sim.Run(2 * sim.Second); err != nil {
			t.Fatal(err)
		}
		return dst.Delivered[packet.KindLegit]
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical worlds diverged: %d vs %d", a, b)
	}
	if a == 0 {
		t.Error("nothing delivered")
	}
}

func TestUpdateParamsThroughFacade(t *testing.T) {
	w := lineWorld(t, 3, nil)
	u, err := w.NewUser("acme", netsim.NodePrefix(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Deploy(service.RateLimit("rl", service.MatchSpec{}, 100, 10), nil, nms.Scope{Nodes: []int{2}}); err != nil {
		t.Fatal(err)
	}
	rate := 9999.0
	if err := u.UpdateParams("dest", "limit", &nms.ParamUpdate{Rate: &rate}); err != nil {
		t.Fatal(err)
	}
	// Verify through the read op.
	res, err := u.Control(&nms.ControlRequest{Op: "read", Stage: "dest", Component: "limit"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || len(res[0].Reads) == 0 {
		t.Fatal("no reads")
	}
	// Bad update surfaces an error.
	bad := -5.0
	if err := u.UpdateParams("dest", "limit", &nms.ParamUpdate{Rate: &bad}); err == nil {
		t.Error("negative rate accepted through facade")
	}
}
