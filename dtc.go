// Package dtc is the public facade of the Adaptive Distributed Traffic
// Control Service reproduction: it assembles the paper's four roles
// (Internet number authority, TCSP, ISPs with adaptive devices, network
// users) over a simulated Internet and exposes the workflow of Figures 4
// and 5 — register, prove ownership, deploy services, control them — in a
// few calls.
//
// A minimal session:
//
//	w, _ := dtc.NewWorld(dtc.WorldConfig{Topology: topology.Line(4), Seed: 1})
//	user, _ := w.NewUser("acme", netsim.NodePrefix(3))
//	_ = user.Deploy(service.FirewallDrop("fw", service.MatchSpec{DstPort: 666}),
//		nil, nms.Scope{})
//	w.Sim.RunAll()
//
// Everything deeper — the simulator, the device model, the baselines — is
// importable from the internal packages by code in this module (examples,
// benchmarks, the CLI tools).
package dtc

import (
	"encoding/json"
	"fmt"

	"dtc/internal/auth"
	"dtc/internal/netsim"
	"dtc/internal/nms"
	"dtc/internal/ownership"
	"dtc/internal/packet"
	"dtc/internal/routing"
	"dtc/internal/service"
	"dtc/internal/sim"
	"dtc/internal/tcsp"
	"dtc/internal/topology"
)

// WorldConfig configures NewWorld.
type WorldConfig struct {
	// Topology is the AS/router graph (required).
	Topology *topology.Graph
	// Link applies to every link; zero value means netsim.DefaultLink.
	Link netsim.LinkConfig
	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
	// ISPPartition assigns router nodes to ISPs ("isp1", "isp2", …).
	// Nil means a single ISP operating every router.
	ISPPartition [][]int
	// Routes, if non-nil, is a precomputed concurrency-safe routing source
	// (typically *routing.Shared from a sweep substrate) shared with other
	// worlds over the same topology. Nil means a private table.
	Routes routing.Source
	// NodeOwners, if non-nil, is the precomputed compiled NodePrefix(i)->i
	// address map for Topology, shared with other worlds. Nil means build
	// a private one.
	NodeOwners *ownership.Compiled[int]
}

// World is a fully wired instance of the paper's role model.
type World struct {
	Sim       *sim.Simulation
	Net       *netsim.Network
	Authority *ownership.Registry
	TCSP      *tcsp.TCSP
	ISPs      map[string]*nms.NMS

	ispNames []string
}

// NewWorld builds the simulation, network, number authority, TCSP and ISP
// management systems.
func NewWorld(cfg WorldConfig) (*World, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("dtc: WorldConfig.Topology is required")
	}
	link := cfg.Link
	if link == (netsim.LinkConfig{}) {
		link = netsim.DefaultLink
	}
	s := sim.New(cfg.Seed)
	net, err := netsim.NewOnSubstrate(s, cfg.Topology, link, cfg.Routes, cfg.NodeOwners)
	if err != nil {
		return nil, err
	}
	caID, err := auth.NewIdentity("tcsp", deriveSeed(cfg.Seed, 0xca))
	if err != nil {
		return nil, err
	}
	w := &World{
		Sim:       s,
		Net:       net,
		Authority: ownership.NewRegistry(),
		ISPs:      make(map[string]*nms.NMS),
	}
	clock := func() int64 { return int64(s.Now() / sim.Second) }
	w.TCSP = tcsp.New(caID, w.Authority, clock)

	partition := cfg.ISPPartition
	if partition == nil {
		all := make([]int, cfg.Topology.Len())
		for i := range all {
			all[i] = i
		}
		partition = [][]int{all}
	}
	for i, nodes := range partition {
		name := fmt.Sprintf("isp%d", i+1)
		m, err := nms.New(name, net, nodes, w.TCSP.PublicKey(), clock)
		if err != nil {
			return nil, err
		}
		if err := w.TCSP.AddISP(name, m); err != nil {
			return nil, err
		}
		w.ISPs[name] = m
		w.ispNames = append(w.ispNames, name)
	}
	return w, nil
}

// deriveSeed produces a deterministic 32-byte key seed from the world seed.
func deriveSeed(seed uint64, salt byte) []byte {
	out := make([]byte, 32)
	x := seed ^ uint64(salt)*0x9e3779b97f4a7c15
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

// ISPNames returns the participating ISP names in creation order.
func (w *World) ISPNames() []string { return append([]string(nil), w.ispNames...) }

// User is a registered network user: identity, TCSP certificate and the
// plumbing to sign deployment/control requests.
type User struct {
	ID   *auth.Identity
	Cert *auth.Certificate

	world    *World
	prefixes []packet.Prefix
	nonce    uint64
}

// NewUser allocates the prefixes to name in the number authority, then
// performs Figure-4 registration (identity proof + ownership verification
// + certificate issuance).
func (w *World) NewUser(name string, prefixes ...packet.Prefix) (*User, error) {
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("dtc: user %q needs at least one prefix", name)
	}
	id, err := auth.NewIdentity(name, deriveSeed(uint64(len(w.ispNames))<<32|uint64(len(name)+1)*uint64(w.Sim.RNG().Uint32()), 0x01))
	if err != nil {
		return nil, err
	}
	ss := make([]string, len(prefixes))
	for i, p := range prefixes {
		if err := w.Authority.Allocate(p, ownership.OwnerID(name)); err != nil {
			return nil, err
		}
		ss[i] = p.String()
	}
	sig := id.Sign(tcsp.RegistrationBytes(name, id.Pub, ss))
	cert, err := w.TCSP.Register(name, id.Pub, ss, sig)
	if err != nil {
		return nil, err
	}
	return &User{ID: id, Cert: cert, world: w, prefixes: prefixes}, nil
}

// Prefixes returns the user's certified prefixes as strings.
func (u *User) Prefixes() []string {
	ss := make([]string, len(u.prefixes))
	for i, p := range u.prefixes {
		ss[i] = p.String()
	}
	return ss
}

// sign wraps a request body in a signed envelope.
func (u *User) sign(body any) (*auth.SignedRequest, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	u.nonce++
	return auth.SignRequest(u.ID, u.Cert.Serial, u.nonce, data), nil
}

// Deploy installs spec through the TCSP on the named ISPs (none = all),
// binding the given prefixes (nil = all certified prefixes).
func (u *User) Deploy(spec *service.Spec, prefixes []string, scope nms.Scope, isps ...string) ([]*nms.DeployResult, error) {
	if prefixes == nil {
		prefixes = u.Prefixes()
	}
	sreq, err := u.sign(&nms.DeployRequest{
		Owner: u.ID.Name, Prefixes: prefixes, Spec: *spec, Scope: scope,
	})
	if err != nil {
		return nil, err
	}
	return u.world.TCSP.Deploy(sreq, isps)
}

// DeployDirect bypasses the TCSP and contacts one ISP's management system
// directly, optionally relaying to its peers — the paper's fallback for a
// TCSP made unreachable by the attack itself.
func (u *User) DeployDirect(ispName string, relay bool, spec *service.Spec, prefixes []string, scope nms.Scope) ([]*nms.DeployResult, error) {
	m, ok := u.world.ISPs[ispName]
	if !ok {
		return nil, fmt.Errorf("dtc: unknown ISP %q", ispName)
	}
	if prefixes == nil {
		prefixes = u.Prefixes()
	}
	sreq, err := u.sign(&nms.DeployRequest{
		Owner: u.ID.Name, Prefixes: prefixes, Spec: *spec, Scope: scope,
	})
	if err != nil {
		return nil, err
	}
	if relay {
		results, errs := m.DeployWithRelay(u.Cert, sreq)
		if len(errs) > 0 {
			return results, errs[0]
		}
		return results, nil
	}
	r, err := m.Deploy(u.Cert, sreq)
	if err != nil {
		return nil, err
	}
	return []*nms.DeployResult{r}, nil
}

// Control sends a control operation through the TCSP.
func (u *User) Control(req *nms.ControlRequest, isps ...string) ([]*nms.ControlResult, error) {
	req.Owner = u.ID.Name
	sreq, err := u.sign(req)
	if err != nil {
		return nil, err
	}
	return u.world.TCSP.Control(sreq, isps)
}

// Activate enables the user's service at the given stage on all ISPs.
func (u *User) Activate(stage string) error {
	_, err := u.Control(&nms.ControlRequest{Op: "activate", Stage: stage})
	return err
}

// Deactivate disables the user's service at the given stage on all ISPs.
func (u *User) Deactivate(stage string) error {
	_, err := u.Control(&nms.ControlRequest{Op: "deactivate", Stage: stage})
	return err
}

// UpdateParams changes a live component's parameters on every ISP — the
// paper's "modify specific parameters" operation (Figure 5).
func (u *User) UpdateParams(stage, component string, update *nms.ParamUpdate, isps ...string) error {
	_, err := u.Control(&nms.ControlRequest{
		Op: "update", Stage: stage, Component: component, Update: update,
	}, isps...)
	return err
}

// Counters aggregates processed/discarded counts across all ISPs.
func (u *User) Counters(stage string) (processed, discarded uint64, err error) {
	results, err := u.Control(&nms.ControlRequest{Op: "counters", Stage: stage})
	if err != nil {
		return 0, 0, err
	}
	for _, r := range results {
		for _, c := range r.Counters {
			processed += c.Processed
			discarded += c.Discarded
		}
	}
	return processed, discarded, nil
}

// Events returns the control-plane events emitted for this user across
// all ISPs.
func (u *User) Events() ([]nms.EventRecord, error) {
	results, err := u.Control(&nms.ControlRequest{Op: "events"})
	if err != nil {
		return nil, err
	}
	var out []nms.EventRecord
	for _, r := range results {
		out = append(out, r.Events...)
	}
	return out, nil
}
