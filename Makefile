# Development entry points. Everything is stdlib Go; no tools beyond the
# toolchain are required.

GO ?= go

.PHONY: all check build test race race-experiment race-live race-shard race-hybrid race-routing race-deploy chaos deploy-smoke vet vuln fmtcheck fuzz bench benchcmp benchfull experiments examples clean

all: build vet fmtcheck test

# The pre-commit gate: everything `all` runs (including `go vet`) plus the
# benchmark regression comparison against the previous PR's recorded
# baseline, the chaos suite (fault injection + recovery), the hybrid and
# routing concurrency suites under the race detector, a best-effort
# vulnerability scan, and the multi-process deployment smoke (real OS
# processes over loopback TCP, torn down with an orphan check).
check: all benchcmp chaos race-hybrid race-routing vuln deploy-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Best-effort vulnerability scan: runs govulncheck when the tool is
# installed and the vuln DB is reachable, and reports (without failing the
# build) when it is not — CI images without network access still pass.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "vuln: govulncheck reported findings or could not reach the DB (non-fatal)"; \
	else \
		echo "vuln: govulncheck not installed, skipping"; \
	fi

# Fail if any file needs gofmt. Part of tier-1 via `make all`.
fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-check the concurrent machinery specifically: RunMany drives many
# independent simulations on worker goroutines, and the sweep runner +
# shared substrate carry every in-experiment parallel sweep.
race-experiment:
	$(GO) test -race ./internal/experiment ./internal/sweep ./internal/routing ./internal/flowsim

# Race-check the live server core and the telemetry/defense subsystem it
# drives: concurrent control-plane clients, watch streams, HTTP scrapes and
# the wall-clock simulation loop all share one process.
race-live:
	$(GO) test -race ./internal/live ./internal/ctl ./internal/telemetry ./internal/defense

# Race-check the sharded parallel engine: coordinator rounds, barrier
# drains, and the sharded network's cross-shard delivery, plus the e13
# scalability experiment that drives them end to end.
race-shard:
	$(GO) test -race -run 'Sharded|Partition|PeekTime|AdvanceTo' ./internal/sim ./internal/netsim ./internal/topology
	$(GO) test -race -run 'TestWorkerInvariance/e13' ./internal/experiment

# Race-check the hybrid fluid/packet substrate: boundary injectors and
# absorbers run on shard workers while the fluid model serves concurrent
# FateFrom walks, plus the e15 experiment that drives it end to end at
# worker counts {1,2,8}.
race-hybrid:
	$(GO) test -race ./internal/hybrid
	$(GO) test -race -run 'TestE15' ./internal/experiment

# Race-check the lock-free routing cache: concurrent readers racing cold
# slots, parallel Prebuild, and repair/differential suites that hammer the
# builder pool.
race-routing:
	$(GO) test -race -run 'Shared|Prebuild|Repair|Builder|Caches' ./internal/routing

# The chaos suite: the deterministic fault-injection engine plus every
# crash/heal/resync/reconnect/leak test across the stack, all under the
# race detector (DESIGN.md §11 lists the invariants these pin).
chaos:
	$(GO) test -race ./internal/fault
	$(GO) test -race -run 'Fault|FailLink|Crash|Heal|Resync|Resubscribe|Leak|Retry|E14' \
		./internal/nms ./internal/defense ./internal/ctl ./internal/live \
		./internal/netsim ./internal/experiment

# Multi-process deployment smoke: one command brings up TCSP + ISP NMS +
# attack + user-agent processes, drives the scripted control-plane
# workload, and verifies teardown leaves no orphan processes.
deploy-smoke:
	$(GO) test -run 'TestDeploySmoke|TestDeployPortCollision' -count=1 ./internal/deploy

# The deployment harness under the race detector (the orchestrator and the
# in-process side of every role run in the instrumented test binary, which
# is also re-executed as each child role).
race-deploy:
	$(GO) test -race -short -count=1 ./internal/deploy

# Short fuzz pass over the wire-format and parser fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshalBinary -fuzztime=10s ./internal/packet/
	$(GO) test -fuzz=FuzzParsePrefix -fuzztime=10s ./internal/packet/
	$(GO) test -fuzz=FuzzParseAddr -fuzztime=10s ./internal/packet/
	$(GO) test -fuzz=FuzzSnapshotUnmarshal -fuzztime=10s ./internal/telemetry/
	$(GO) test -fuzz=FuzzFaultSchedule -fuzztime=10s ./internal/fault/

# Hot-path micro-benchmarks, recorded as the per-PR performance trajectory.
# Bump BENCH_OUT in the PR that changes performance-relevant code.
MICROBENCH = BenchmarkDeviceFastPath|BenchmarkDeviceTwoStage|BenchmarkDeviceProcessBatch|BenchmarkTrieLookup|BenchmarkCompiledTrieLookup|BenchmarkEventQueue|BenchmarkPacketForwarding|BenchmarkShardedForwarding|BenchmarkSweepE10|BenchmarkFlowEvalBatch|BenchmarkTelemetryWire|BenchmarkDetectorObserve|BenchmarkPromExposition|BenchmarkE15Hybrid|BenchmarkHybridMemory|BenchmarkCtlLoad|BenchmarkRoutingBuildTree|BenchmarkSharedTreeToParallel|BenchmarkFailLinkRepair
BENCH_OUT ?= BENCH_PR10.json
BENCH_BASE ?= BENCH_PR9.json

# Three samples per benchmark; benchjson keeps the per-metric minimum,
# which filters scheduling noise on shared machines.
bench:
	$(GO) test -bench='$(MICROBENCH)' -benchmem -run='^$$' -count=3 -timeout 40m . | $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# Compare the current recording against the previous PR's baseline; fails
# on a >20% ns/op or allocs/op regression in any shared benchmark.
benchcmp:
	$(GO) run ./cmd/benchjson -old $(BENCH_BASE) -new $(BENCH_OUT)

# Every benchmark in the repo (figure/claim reproductions included).
benchfull:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Regenerate every paper table/figure at full size (results/full_run.txt).
experiments:
	$(GO) run ./cmd/ddosim -all | tee results/full_run.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/reflector_defense
	$(GO) run ./examples/distributed_firewall
	$(GO) run ./examples/traceback_forensics
	$(GO) run ./examples/network_debugging
	$(GO) run ./examples/forensic_replay
	$(GO) run ./examples/live_control_plane

clean:
	$(GO) clean -testcache
