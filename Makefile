# Development entry points. Everything is stdlib Go; no tools beyond the
# toolchain are required.

GO ?= go

.PHONY: all build test race vet fuzz bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the wire-format and parser fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshalBinary -fuzztime=10s ./internal/packet/
	$(GO) test -fuzz=FuzzParsePrefix -fuzztime=10s ./internal/packet/
	$(GO) test -fuzz=FuzzParseAddr -fuzztime=10s ./internal/packet/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Regenerate every paper table/figure at full size (results/full_run.txt).
experiments:
	$(GO) run ./cmd/ddosim -all | tee results/full_run.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/reflector_defense
	$(GO) run ./examples/distributed_firewall
	$(GO) run ./examples/traceback_forensics
	$(GO) run ./examples/network_debugging
	$(GO) run ./examples/forensic_replay
	$(GO) run ./examples/live_control_plane

clean:
	$(GO) clean -testcache
