// Traceback forensics (paper §4.4): using the traffic control service as a
// worldwide SPIE deployment.
//
// A compromised host sends a spoofed packet to a server. The server's
// owner has a source+dest SPIE digest service deployed; the forensic
// investigation queries every device for the packet digest and walks the
// positive answers back to the true entry point — despite the forged
// source address.
//
//	go run ./examples/traceback_forensics
package main

import (
	"fmt"
	"log"

	dtc "dtc"
	"dtc/internal/baseline"
	"dtc/internal/device"
	"dtc/internal/device/modules"
	"dtc/internal/netsim"
	"dtc/internal/nms"
	"dtc/internal/packet"
	"dtc/internal/service"
	"dtc/internal/sim"
	"dtc/internal/topology"
)

func main() {
	seed := uint64(11)
	s := sim.New(seed)
	g, err := topology.TransitStub(5, 4, 0.25, s.RNG())
	if err != nil {
		log.Fatal(err)
	}
	world, err := dtc.NewWorld(dtc.WorldConfig{Topology: g, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	stubs := g.Stubs()
	victimNode := stubs[0]
	owner, err := world.NewUser("victim.example", netsim.NodePrefix(victimNode))
	if err != nil {
		log.Fatal(err)
	}

	// The owner deploys SPIE digest collection for traffic addressed to
	// its block, on every participating router.
	if _, err := owner.Deploy(service.Traceback("spie", 100, 64, seed), nil, nms.Scope{}); err != nil {
		log.Fatal(err)
	}
	// The operator also runs infrastructure SPIE for comparison.
	infra := baseline.NewSPIEInfrastructure(world.Net, nil, 100*sim.Millisecond, 64, 1<<18)

	victim, _ := world.Net.AttachHost(victimNode)
	attackerNode := stubs[len(stubs)-1]
	attacker, _ := world.Net.AttachHost(attackerNode)

	// Background noise so the digests are not trivially unique.
	for _, n := range stubs[1:5] {
		h, _ := world.Net.AttachHost(n)
		host := h
		src := host.StartCBR(0, 200, func(i uint64) *packet.Packet {
			return &packet.Packet{Src: host.Addr, Dst: victim.Addr, Proto: packet.TCP, DstPort: 80, Size: 200, Seq: uint32(i), Kind: packet.KindLegit}
		})
		world.Sim.AfterFunc(100*sim.Millisecond, func(sim.Time) { src.Stop() })
	}

	// The attack packet: spoofed source, sent at t=50ms.
	var evil *packet.Packet
	var arrival sim.Time
	victim.Recv = func(now sim.Time, p *packet.Packet) {
		if p.Kind == packet.KindAttack && evil == nil {
			evil, arrival = p.Clone(), now
		}
	}
	attacker.SendBurst(50*sim.Millisecond, 1, func(uint64) *packet.Packet {
		return &packet.Packet{
			Src: packet.MustParseAddr("203.0.113.99"), // forged
			Dst: victim.Addr, Proto: packet.UDP, DstPort: 7,
			Size: 666, Seq: 31337, Kind: packet.KindAttack,
		}
	})
	if _, err := world.Sim.Run(200 * sim.Millisecond); err != nil {
		log.Fatal(err)
	}
	if evil == nil {
		log.Fatal("attack packet not captured")
	}
	fmt.Printf("victim received suspicious packet: %v (claims to be from %v)\n\n", evil, evil.Src)

	// Forensics 1: owner's SPIE service — query each device's digest
	// store through the in-process component handles.
	fmt.Println("owner SPIE query (which devices carried this packet?):")
	var sawNodes []int
	for _, name := range world.ISPNames() {
		m := world.ISPs[name]
		for _, node := range m.Nodes() {
			comp, ok := m.Component("victim.example", device.StageDest, node, "spie")
			if !ok {
				continue
			}
			if seen, _ := comp.(*modules.SPIE).Query(evil, arrival); seen {
				sawNodes = append(sawNodes, node)
			}
		}
	}
	fmt.Printf("  positive digests at nodes %v\n", sawNodes)

	// Forensics 2: reconstruct the path with the operator infrastructure.
	origin, path, ok := infra.TraceOrigin(evil, arrival, victimNode)
	if !ok {
		log.Fatal("infrastructure traceback failed")
	}
	fmt.Printf("\ninfrastructure SPIE path reconstruction: %v\n", path)
	fmt.Printf("  identified entry point: node %d\n", origin)
	fmt.Printf("  true attacker node:     node %d\n", attackerNode)
	if origin == attackerNode {
		fmt.Println("  -> traceback names the true origin despite the spoofed source")
	}
}
