// Live control plane: the whole Figure-3 role model over real TCP sockets
// in one process — a TCSP server, two ISP NMS servers, and a network user
// client, all on loopback, managing a simulated data plane.
//
// This is the same wiring cmd/tcsd and cmd/tcctl use, condensed into a
// single runnable walkthrough.
//
//	go run ./examples/live_control_plane
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"

	"dtc/internal/auth"
	"dtc/internal/ctl"
	"dtc/internal/netsim"
	"dtc/internal/nms"
	"dtc/internal/ownership"
	"dtc/internal/packet"
	"dtc/internal/service"
	"dtc/internal/sim"
	"dtc/internal/tcsp"
	"dtc/internal/topology"
)

func main() {
	// --- Infrastructure side -------------------------------------------
	s := sim.New(1)
	network, err := netsim.New(s, topology.Line(6), netsim.DefaultLink)
	if err != nil {
		log.Fatal(err)
	}
	authority := ownership.NewRegistry()
	victimPrefix := netsim.NodePrefix(5)
	if err := authority.Allocate(victimPrefix, "acme"); err != nil {
		log.Fatal(err)
	}
	caID, err := auth.NewIdentity("tcsp", nil)
	if err != nil {
		log.Fatal(err)
	}
	clock := func() int64 { return int64(s.Now() / sim.Second) }
	tc := tcsp.New(caID, authority, clock)

	// Two ISPs, each as a TCP server; the TCSP reaches them as clients.
	for i, nodes := range [][]int{{0, 1, 2}, {3, 4, 5}} {
		name := fmt.Sprintf("isp%d", i+1)
		m, err := nms.New(name, network, nodes, tc.PublicKey(), clock)
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ctl.NewServer(ln, ctl.NMSHandler(m)).Close()
		cl, err := ctl.Dial(ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		if err := tc.AddISP(name, ctl.NewNMSClient(cl)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s management system listening on %s (nodes %v)\n", name, ln.Addr(), nodes)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.NewServer(ln, ctl.TCSPHandler(tc)).Close()
	fmt.Printf("TCSP listening on %s\n\n", ln.Addr())

	// --- Network user side ---------------------------------------------
	conn, err := ctl.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	client := ctl.NewTCSPClient(conn)
	if err := client.Ping(); err != nil {
		log.Fatal(err)
	}
	me, err := auth.NewIdentity("acme", nil)
	if err != nil {
		log.Fatal(err)
	}
	cert, err := client.Register(me, []string{victimPrefix.String()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered: certificate serial %d covering %v\n", cert.Serial, cert.Prefixes)

	body, err := json.Marshal(&nms.DeployRequest{
		Owner:    "acme",
		Prefixes: []string{victimPrefix.String()},
		Spec:     *service.FirewallDrop("no-udp", service.MatchSpec{Proto: "udp"}),
	})
	if err != nil {
		log.Fatal(err)
	}
	results, err := client.Deploy(auth.SignRequest(me, cert.Serial, 1, body), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("deployed on %s nodes %v\n", r.ISP, r.Nodes)
	}

	// --- Data plane ------------------------------------------------------
	victim, _ := network.AttachHost(5)
	flooder, _ := network.AttachHost(0)
	legit, _ := network.AttachHost(1)
	f := flooder.StartCBR(0, 1000, func(uint64) *packet.Packet {
		return &packet.Packet{Src: flooder.Addr, Dst: victim.Addr, Proto: packet.UDP, DstPort: 9, Size: 400, Kind: packet.KindAttack}
	})
	l := legit.StartCBR(0, 100, func(uint64) *packet.Packet {
		return &packet.Packet{Src: legit.Addr, Dst: victim.Addr, Proto: packet.TCP, DstPort: 80, Size: 200, Kind: packet.KindLegit}
	})
	s.AfterFunc(sim.Second, func(sim.Time) { f.Stop(); l.Stop(); s.Stop() })
	if _, err := s.Run(2 * sim.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter 1s: victim got legit=%d attack=%d\n",
		victim.Delivered[packet.KindLegit], victim.Delivered[packet.KindAttack])

	// Read counters back over the wire.
	ctlBody, err := json.Marshal(&nms.ControlRequest{Owner: "acme", Op: "counters", Stage: "dest"})
	if err != nil {
		log.Fatal(err)
	}
	ctlResults, err := client.Control(auth.SignRequest(me, cert.Serial, 2, ctlBody), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range ctlResults {
		for _, c := range r.Counters {
			if c.Discarded > 0 {
				fmt.Printf("%s node %d discarded %d flood packets\n", r.ISP, c.Node, c.Discarded)
			}
		}
	}
}
