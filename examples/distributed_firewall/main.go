// Distributed firewall with automated reaction (paper §4.2 and §4.4).
//
// The owner of a server block deploys a composite service: traffic
// statistics, a static firewall (drop known-bad ports), and an
// anomaly trigger that gates a rate limiter when the inbound rate spikes.
// The example then reads statistics, counters and trigger events back
// through the control plane — the full owner's-eye view of the network.
//
//	go run ./examples/distributed_firewall
package main

import (
	"fmt"
	"log"

	dtc "dtc"
	"dtc/internal/device/modules"
	"dtc/internal/netsim"
	"dtc/internal/nms"
	"dtc/internal/packet"
	"dtc/internal/service"
	"dtc/internal/sim"
	"dtc/internal/topology"
)

func main() {
	world, err := dtc.NewWorld(dtc.WorldConfig{
		Topology: topology.Star(8),
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	owner, err := world.NewUser("corp", netsim.NodePrefix(8))
	if err != nil {
		log.Fatal(err)
	}

	// Composite service graph:
	//   stats -> firewall(drop tcp:23,udp:1434) -> trigger -> gate -> limiter
	spec := &service.Spec{
		Name:  "corp-perimeter",
		Stage: "dest",
		Components: []service.ComponentSpec{
			{Type: modules.TypeStats, Label: "stats", Rules: []service.MatchSpec{
				{Proto: "tcp", DstPort: 80},
				{Proto: "udp"},
			}},
			{Type: modules.TypeFilter, Label: "firewall", Rules: []service.MatchSpec{
				{Proto: "tcp", DstPort: 23},   // telnet
				{Proto: "udp", DstPort: 1434}, // slammer
			}},
			{Type: modules.TypeTrigger, Label: "anomaly", Match: &service.MatchSpec{},
				WindowMS: 50, Threshold: 40,
				OnFire:  []service.TriggerAction{{Target: "gate", SetOn: true}},
				OnClear: []service.TriggerAction{{Target: "gate", SetOn: false}}},
			{Type: modules.TypeSwitch, Label: "gate"},
			// The reaction only limits UDP: web traffic is never touched
			// even while the gate is open.
			{Type: modules.TypeRateLimiter, Label: "limiter", Match: &service.MatchSpec{Proto: "udp"}, Rate: 300, Burst: 30},
		},
		Wires: []service.WireSpec{
			{From: "stats", Port: 0, To: "firewall"},
			{From: "firewall", Port: 0, To: "anomaly"},
			{From: "anomaly", Port: 0, To: "gate"},
			{From: "gate", Port: 0, To: ""},
			{From: "gate", Port: 1, To: "limiter"},
			{From: "limiter", Port: 0, To: ""},
		},
	}
	if _, err := owner.Deploy(spec, nil, nms.Scope{Nodes: []int{8}}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed corp-perimeter: stats -> firewall -> anomaly trigger -> gated limiter")

	server, _ := world.Net.AttachHost(8)
	web, _ := world.Net.AttachHost(1)
	scanner, _ := world.Net.AttachHost(2)
	flooder, _ := world.Net.AttachHost(3)

	// Normal web traffic the whole time.
	webSrc := web.StartCBR(0, 100, func(uint64) *packet.Packet {
		return &packet.Packet{Src: web.Addr, Dst: server.Addr, Proto: packet.TCP, DstPort: 80, Size: 300, Kind: packet.KindLegit}
	})
	// A telnet scan: always firewalled.
	scanner.SendBurst(100*sim.Millisecond, 20, func(uint64) *packet.Packet {
		return &packet.Packet{Src: scanner.Addr, Dst: server.Addr, Proto: packet.TCP, DstPort: 23, Size: 60, Kind: packet.KindAttack}
	})
	// A flood between 300 and 600 ms: trips the anomaly trigger.
	var flood *netsim.Source
	world.Sim.At(300*sim.Millisecond, sim.EventFunc(func(now sim.Time) {
		flood = flooder.StartCBR(now, 3000, func(uint64) *packet.Packet {
			return &packet.Packet{Src: flooder.Addr, Dst: server.Addr, Proto: packet.UDP, DstPort: 7, Size: 400, Kind: packet.KindAttack}
		})
	}))
	world.Sim.AfterFunc(600*sim.Millisecond, func(sim.Time) { flood.Stop() })
	world.Sim.AfterFunc(sim.Second, func(sim.Time) { webSrc.Stop(); world.Sim.Stop() })
	if _, err := world.Sim.Run(2 * sim.Second); err != nil {
		log.Fatal(err)
	}

	// Owner's-eye view through the control plane.
	fmt.Printf("\nserver delivery: legit=%d attack=%d\n",
		server.Delivered[packet.KindLegit], server.Delivered[packet.KindAttack])

	reads, err := owner.Control(&nms.ControlRequest{Op: "read", Stage: "dest", Component: "stats"})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reads {
		for _, cr := range r.Reads {
			fmt.Printf("stats@node%d: %s\n", cr.Node, cr.Data)
		}
	}
	reads, err = owner.Control(&nms.ControlRequest{Op: "read", Stage: "dest", Component: "firewall"})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reads {
		for _, cr := range r.Reads {
			fmt.Printf("firewall@node%d: %s\n", cr.Node, cr.Data)
		}
	}
	events, err := owner.Events()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncontrol-plane events:")
	for _, e := range events {
		fmt.Printf("  t=%6.1fms node=%d %s: %s\n", float64(e.AtNanos)/1e6, e.Node, e.Component, e.Message)
	}
}
