// Reflector defense: the paper's headline scenario (Figure 1 + §4.3).
//
// A botnet aims DNS reflectors at a web service by spoofing the victim's
// address on its requests. The example runs the attack four times —
// undefended, with a naive reflector blacklist (what a traceback-driven
// reaction would install), with the closed-loop adaptive controller that
// detects the flood from the network-wide telemetry stream and deploys a
// rate limit on its own, and with the paper's source-stage anti-spoofing
// service — and prints the victim's goodput, the collateral damage on the
// reflectors' legitimate DNS service, and how fast each defense engaged.
//
//	go run ./examples/reflector_defense
package main

import (
	"fmt"
	"log"

	dtc "dtc"
	"dtc/internal/attack"
	"dtc/internal/defense"
	"dtc/internal/netsim"
	"dtc/internal/nms"
	"dtc/internal/packet"
	"dtc/internal/service"
	"dtc/internal/sim"
	"dtc/internal/topology"
)

type outcome struct {
	defense       string
	webGoodput    float64
	dnsGoodput    float64
	backscatter   uint64
	attackDropped uint64
	reactMS       float64 // closed loop only; -1 = manual/none
}

func run(mode string) (outcome, error) {
	seed := uint64(7)
	s := sim.New(seed)
	g, err := topology.TransitStub(6, 5, 0.2, s.RNG())
	if err != nil {
		return outcome{}, err
	}
	world, err := dtc.NewWorld(dtc.WorldConfig{Topology: g, Seed: seed})
	if err != nil {
		return outcome{}, err
	}
	stubs := g.Stubs()
	victimNode := stubs[0]
	owner, err := world.NewUser("victim.example", netsim.NodePrefix(victimNode))
	if err != nil {
		return outcome{}, err
	}

	// The victim's web service and the innocent DNS reflectors.
	web, err := attack.NewVictimService(world.Net, victimNode, 200*sim.Microsecond, 64, 800)
	if err != nil {
		return outcome{}, err
	}
	reflectors, err := attack.NewReflectorFleet(world.Net, stubs[1:6], attack.ReflectDNS, 20*sim.Microsecond, 4096)
	if err != nil {
		return outcome{}, err
	}

	var ctrl *defense.Controller
	switch mode {
	case "adaptive closed loop":
		// Nobody deploys anything by hand: the controller watches the
		// telemetry stream for UDP toward the victim and reacts itself.
		// The limit is destination-stage, so like the blacklist it cannot
		// tell reflected floods from the victim's own DNS replies.
		ctrl, err = defense.NewController(defense.Config{
			Owner:    "victim-ops",
			Prefixes: []packet.Prefix{netsim.NodePrefix(victimNode)},
			Match:    service.MatchSpec{Proto: "udp"},
			LimitPPS: 100,
			Detector: defense.DetectorConfig{Threshold: 100, Warmup: 6, Hold: 3},
		}, world.TCSP.Telemetry())
		if err != nil {
			return outcome{}, err
		}
		for _, name := range world.ISPNames() {
			ctrl.AddISP(name, world.ISPs[name])
		}
		if err := ctrl.Start(); err != nil {
			return outcome{}, err
		}
		world.Sim.NewTicker(20*sim.Millisecond, func(now sim.Time) {
			for _, name := range world.ISPNames() {
				if err := world.TCSP.Report(name, world.ISPs[name].Snapshot(int64(now))); err != nil {
					log.Fatal(err)
				}
			}
			if err := ctrl.Step(now); err != nil {
				log.Fatal(err)
			}
		})
	case "blacklist reflectors":
		bl := service.BlacklistSources("block-reflectors")
		for _, r := range reflectors {
			bl.Components[0].Addrs = append(bl.Components[0].Addrs, r.Server.Host.Addr.String())
		}
		if _, err := owner.Deploy(bl, nil, nms.Scope{Nodes: []int{victimNode}}); err != nil {
			return outcome{}, err
		}
	case "TCS anti-spoofing":
		// Source-stage ingress filtering bound to the victim's prefix:
		// any packet claiming the victim's address dies where it enters
		// the Internet.
		if _, err := owner.Deploy(service.AntiSpoofing("as"), nil, nms.Scope{}); err != nil {
			return outcome{}, err
		}
	}

	// Legitimate workload: web clients, plus DNS lookups against the
	// reflectors from hosts in the victim's own network.
	clients, err := attack.NewClients(world.Net, stubs[6:11])
	if err != nil {
		return outcome{}, err
	}
	for _, c := range clients {
		c.Start(0, web.Server.Host.Addr, 150, 200)
	}
	var dnsSent, dnsOK uint64
	dnsHost, err := world.Net.AttachHost(victimNode)
	if err != nil {
		return outcome{}, err
	}
	dnsHost.Recv = func(_ sim.Time, p *packet.Packet) {
		if p.Kind == packet.KindLegit && p.Proto == packet.UDP {
			dnsOK++
		}
	}
	dnsSrc := dnsHost.StartCBR(0, 200, func(i uint64) *packet.Packet {
		dnsSent++
		r := reflectors[i%uint64(len(reflectors))]
		return &packet.Packet{Src: dnsHost.Addr, Dst: r.Server.Host.Addr,
			Proto: packet.UDP, DstPort: 53, SrcPort: uint16(4000 + i%100),
			Size: 60, Kind: packet.KindLegit}
	})

	// The botnet (Figure 1): attacker -> masters -> agents -> reflectors.
	botnet, err := attack.NewBotnet(world.Net, stubs[11], []int{stubs[12]}, stubs[13:19], 6)
	if err != nil {
		return outcome{}, err
	}
	// The attack starts after a calm window — the adaptive controller uses
	// it to learn the victim's normal UDP load before anything burns.
	onset := 200 * sim.Millisecond
	dur := 500 * sim.Millisecond
	if err := botnet.LaunchReflectorAttack(onset, reflectors, attack.ReflectDNS,
		web.Server.Host.Addr, 1500, dur); err != nil {
		return outcome{}, err
	}

	world.Sim.AfterFunc(onset+dur, func(sim.Time) {
		for _, c := range clients {
			c.Stop()
		}
		dnsSrc.Stop()
		world.Sim.Stop()
	})
	if _, err := world.Sim.Run(2 * (onset + dur)); err != nil {
		return outcome{}, err
	}
	reactMS := -1.0
	if ctrl != nil {
		for _, tr := range ctrl.Transitions() {
			if tr.Mitigating {
				reactMS = float64(tr.At-onset) / float64(sim.Millisecond)
				break
			}
		}
	}

	var req, rep uint64
	for _, c := range clients {
		req += c.Requested()
		rep += c.Replies
	}
	// Counters exist only when a service was deployed; errors mean zero.
	_, discarded, _ := owner.Counters("source")
	return outcome{
		defense:       mode,
		webGoodput:    100 * float64(rep) / float64(req),
		dnsGoodput:    100 * float64(dnsOK) / float64(dnsSent),
		backscatter:   web.Server.Host.Delivered[packet.KindReflect],
		attackDropped: discarded,
		reactMS:       reactMS,
	}, nil
}

func main() {
	fmt.Println("DDoS reflector attack: 36 agents spoof the victim's address at 5 DNS reflectors")
	fmt.Println()
	fmt.Printf("%-22s  %12s  %12s  %12s  %10s\n", "defense", "web goodput", "DNS goodput", "backscatter", "reaction")
	for _, mode := range []string{"none", "blacklist reflectors", "adaptive closed loop", "TCS anti-spoofing"} {
		o, err := run(mode)
		if err != nil {
			log.Fatal(err)
		}
		react := "manual"
		if o.reactMS >= 0 {
			react = fmt.Sprintf("%.0f ms", o.reactMS)
		} else if o.defense == "none" {
			react = "-"
		}
		fmt.Printf("%-22s  %11.1f%%  %11.1f%%  %9d pkt  %10s\n", o.defense, o.webGoodput, o.dnsGoodput, o.backscatter, react)
	}
	fmt.Println()
	fmt.Println("blacklisting the reflectors restores the web server but cuts off DNS —")
	fmt.Println("the paper's collateral-damage argument; the adaptive loop reacts without any")
	fmt.Println("operator but shares that collateral at the destination stage; anti-spoofing")
	fmt.Println("near the agents fixes both.")
}
