// Forensic capture and replay (paper abstract: "support for forensic
// analyses"; §4.4 "sampling traces of suspicious network activity").
//
// During an attack, a trace capture at the victim's border records the
// suspicious traffic to a file-format byte stream. After the fact, an
// analyst (a) inspects the records, (b) re-injects them into a *fresh*
// simulated network to test a candidate filter before deploying it for
// real, and (c) verifies the filter would have stopped the recorded
// attack without touching the recorded legitimate traffic.
//
//	go run ./examples/forensic_replay
package main

import (
	"bytes"
	"fmt"
	"log"

	dtc "dtc"
	"dtc/internal/netsim"
	"dtc/internal/nms"
	"dtc/internal/packet"
	"dtc/internal/service"
	"dtc/internal/sim"
	"dtc/internal/topology"
	"dtc/internal/trace"
)

func main() {
	// --- Phase 1: the incident, recorded live ---------------------------
	world, err := dtc.NewWorld(dtc.WorldConfig{Topology: topology.Line(4), Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	victim, _ := world.Net.AttachHost(3)
	attacker, _ := world.Net.AttachHost(0)
	client, _ := world.Net.AttachHost(1)

	var capture bytes.Buffer
	w := trace.NewWriter(&capture)
	// Record everything addressed to the victim at its border router.
	trace.Capture(world.Net, 3, w, func(p *packet.Packet) bool { return p.Dst == victim.Addr })

	atk := attacker.StartCBR(0, 500, func(i uint64) *packet.Packet {
		return &packet.Packet{Src: attacker.Addr, Dst: victim.Addr,
			Proto: packet.UDP, DstPort: 1434, Size: 404, Seq: uint32(i), Kind: packet.KindAttack}
	})
	lg := client.StartCBR(0, 100, func(i uint64) *packet.Packet {
		return &packet.Packet{Src: client.Addr, Dst: victim.Addr,
			Proto: packet.TCP, DstPort: 80, Size: 200, Seq: uint32(i), Kind: packet.KindLegit}
	})
	world.Sim.AfterFunc(200*sim.Millisecond, func(sim.Time) { atk.Stop(); lg.Stop(); world.Sim.Stop() })
	if _, err := world.Sim.Run(sim.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incident: captured %d packets (%d bytes of trace)\n", w.Count(), capture.Len())

	// --- Phase 2: offline analysis --------------------------------------
	records, err := trace.NewReader(bytes.NewReader(capture.Bytes())).ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	byPort := map[uint16]int{}
	for _, r := range records {
		byPort[r.Packet.DstPort]++
	}
	fmt.Println("destination-port histogram from the trace:")
	for _, port := range []uint16{80, 1434} {
		fmt.Printf("  port %-5d %d packets\n", port, byPort[port])
	}
	fmt.Println("=> the anomaly is UDP:1434 (slammer-style); candidate filter drafted")

	// --- Phase 3: replay against the candidate filter -------------------
	lab, err := dtc.NewWorld(dtc.WorldConfig{Topology: topology.Line(4), Seed: 10})
	if err != nil {
		log.Fatal(err)
	}
	owner, err := lab.NewUser("victim-owner", netsim.NodePrefix(3))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := owner.Deploy(
		service.FirewallDrop("candidate", service.MatchSpec{Proto: "udp", DstPort: 1434}),
		nil, nms.Scope{},
	); err != nil {
		log.Fatal(err)
	}
	labVictim, _ := lab.Net.AttachHost(3) // same address as the original victim
	labSource, _ := lab.Net.AttachHost(0)
	// Traffic-class metadata is simulator-side and not part of the wire
	// format, so the lab classifies replayed deliveries by port — exactly
	// what a real analyst would do.
	deliveredByPort := map[uint16]int{}
	labVictim.Recv = func(_ sim.Time, p *packet.Packet) { deliveredByPort[p.DstPort]++ }
	trace.Replay(lab.Net, labSource, records, 0)
	if _, err := lab.Sim.RunAll(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nreplay through candidate filter:\n")
	fmt.Printf("  port 1434 delivered: %d of %d recorded\n", deliveredByPort[1434], byPort[1434])
	fmt.Printf("  port 80   delivered: %d of %d recorded\n", deliveredByPort[80], byPort[80])
	if deliveredByPort[1434] == 0 && deliveredByPort[80] == byPort[80] {
		fmt.Println("=> candidate filter is safe to deploy")
	}
}
