// Network debugging (paper §4.4): "Link delays or packet loss on
// intermediate links could be measured for network debugging purposes."
//
// The owner deploys a logging service for its traffic on every router.
// Probe packets addressed to the owner then leave a timestamped digest
// trail; diffing the timestamps of the same digest at successive routers
// yields per-segment one-way delays, and a disappearing trail pinpoints
// the lossy link. One link is configured 9 ms slower and another is
// overloaded to demonstrate both.
//
//	go run ./examples/network_debugging
package main

import (
	"fmt"
	"log"
	"sort"

	dtc "dtc"
	"dtc/internal/device"
	"dtc/internal/device/modules"
	"dtc/internal/netsim"
	"dtc/internal/nms"
	"dtc/internal/packet"
	"dtc/internal/service"
	"dtc/internal/sim"
	"dtc/internal/topology"
)

func main() {
	world, err := dtc.NewWorld(dtc.WorldConfig{Topology: topology.Line(5), Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	// A slow segment: link 2-3 has 10 ms delay instead of 1 ms.
	if err := world.Net.SetDuplexLinkConfig(2, 3, netsim.LinkConfig{
		Bandwidth: 100e6, Delay: 10 * sim.Millisecond, QueueCap: 64,
	}); err != nil {
		log.Fatal(err)
	}
	// A lossy segment: link 3-4 has a 4-packet queue and little bandwidth.
	if err := world.Net.SetDuplexLinkConfig(3, 4, netsim.LinkConfig{
		Bandwidth: 2e6, Delay: sim.Millisecond, QueueCap: 4,
	}); err != nil {
		log.Fatal(err)
	}

	owner, err := world.NewUser("acme", netsim.NodePrefix(4))
	if err != nil {
		log.Fatal(err)
	}
	// Logging service on every router, destination stage.
	spec := &service.Spec{
		Name:  "delay-probe-log",
		Stage: "dest",
		Components: []service.ComponentSpec{
			{Type: modules.TypeLogger, Label: "log", Capacity: 4096},
		},
	}
	if _, err := owner.Deploy(spec, nil, nms.Scope{}); err != nil {
		log.Fatal(err)
	}

	// Probes: 200 small packets plus a burst that overloads link 3-4.
	target, _ := world.Net.AttachHost(4)
	prober, _ := world.Net.AttachHost(0)
	probes := prober.StartCBR(0, 100, func(i uint64) *packet.Packet {
		return &packet.Packet{Src: prober.Addr, Dst: target.Addr,
			Proto: packet.UDP, DstPort: 33434, Size: 64, Seq: uint32(i), Kind: packet.KindLegit}
	})
	burster, _ := world.Net.AttachHost(2)
	burster.SendBurst(500*sim.Millisecond, 400, func(i uint64) *packet.Packet {
		return &packet.Packet{Src: burster.Addr, Dst: target.Addr,
			Proto: packet.UDP, DstPort: 9, Size: 1000, Seq: uint32(100000 + i), Kind: packet.KindLegit}
	})
	world.Sim.AfterFunc(2*sim.Second, func(sim.Time) { probes.Stop(); world.Sim.Stop() })
	if _, err := world.Sim.Run(4 * sim.Second); err != nil {
		log.Fatal(err)
	}

	// Collect the logs from every device.
	entriesAt := map[int]map[uint64]sim.Time{} // node -> digest -> first timestamp
	seenAt := map[int]int{}
	m := world.ISPs["isp1"]
	for _, node := range m.Nodes() {
		comp, ok := m.Component("acme", device.StageDest, node, "log")
		if !ok {
			continue
		}
		lg := comp.(*modules.Logger)
		entriesAt[node] = map[uint64]sim.Time{}
		for _, e := range lg.Entries() {
			if _, dup := entriesAt[node][e.Digest]; !dup {
				entriesAt[node][e.Digest] = e.At
			}
		}
		seenAt[node] = len(entriesAt[node])
	}

	// Per-segment delay: median over probes seen at both ends.
	fmt.Println("per-segment one-way delay measured from the owner's logs:")
	for n := 0; n+1 < 5; n++ {
		var deltas []float64
		for digest, t0 := range entriesAt[n] {
			if t1, ok := entriesAt[n+1][digest]; ok && t1 > t0 {
				deltas = append(deltas, float64(t1-t0)/float64(sim.Millisecond))
			}
		}
		if len(deltas) == 0 {
			fmt.Printf("  link %d-%d: no paired observations\n", n, n+1)
			continue
		}
		sort.Float64s(deltas)
		fmt.Printf("  link %d-%d: median %.2f ms over %d probes\n", n, n+1, deltas[len(deltas)/2], len(deltas))
	}

	// Loss localization: how many distinct owned packets each node saw.
	fmt.Println("\npacket counts per router (losses show up as a drop between neighbors):")
	for n := 0; n < 5; n++ {
		fmt.Printf("  node %d saw %d distinct packets\n", n, seenAt[n])
	}
	lost := seenAt[3] - seenAt[4]
	fmt.Printf("\n=> the 2-3 segment adds ~10 ms (misconfigured delay), and %d packets vanished on link 3-4 (overloaded queue)\n", lost)
}
