// Quickstart: the minimal happy path of the traffic control service.
//
// A network user who owns an address block registers with the TCSP,
// deploys a firewall-like service against a UDP flood, and watches the
// attack die at the first adaptive device on its path while legitimate
// traffic flows untouched.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	dtc "dtc"
	"dtc/internal/netsim"
	"dtc/internal/nms"
	"dtc/internal/packet"
	"dtc/internal/service"
	"dtc/internal/sim"
	"dtc/internal/topology"
)

func main() {
	// A 6-router line split between two ISPs.
	world, err := dtc.NewWorld(dtc.WorldConfig{
		Topology:     topology.Line(6),
		Seed:         1,
		ISPPartition: [][]int{{0, 1, 2}, {3, 4, 5}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// "acme" owns the address block of node 5 (verified against the
	// number authority, certified by the TCSP — Figure 4).
	acme, err := world.NewUser("acme", netsim.NodePrefix(5))
	if err != nil {
		log.Fatal(err)
	}

	// Deploy a firewall dropping UDP:9 floods toward acme's addresses on
	// every participating router (Figure 5).
	results, err := acme.Deploy(
		service.FirewallDrop("no-udp-floods", service.MatchSpec{Proto: "udp", DstPort: 9}),
		nil, nms.Scope{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("deployed on %s, routers %v\n", r.ISP, r.Nodes)
	}

	// Traffic: a flood from node 0 and a legitimate client on node 1.
	server, _ := world.Net.AttachHost(5)
	attacker, _ := world.Net.AttachHost(0)
	client, _ := world.Net.AttachHost(1)

	flood := attacker.StartCBR(0, 2000, func(uint64) *packet.Packet {
		return &packet.Packet{Src: attacker.Addr, Dst: server.Addr,
			Proto: packet.UDP, DstPort: 9, Size: 400, Kind: packet.KindAttack}
	})
	legit := client.StartCBR(0, 200, func(uint64) *packet.Packet {
		return &packet.Packet{Src: client.Addr, Dst: server.Addr,
			Proto: packet.TCP, DstPort: 80, Size: 200, Kind: packet.KindLegit}
	})

	world.Sim.AfterFunc(sim.Second, func(sim.Time) {
		flood.Stop()
		legit.Stop()
		world.Sim.Stop()
	})
	if _, err := world.Sim.Run(2 * sim.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nafter 1s of simulated traffic:\n")
	fmt.Printf("  attack sent %d, delivered %d\n", flood.Sent(), server.Delivered[packet.KindAttack])
	fmt.Printf("  legit  sent %d, delivered %d\n", legit.Sent(), server.Delivered[packet.KindLegit])
	processed, discarded, err := acme.Counters("dest")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  devices processed %d owned packets, discarded %d\n", processed, discarded)
}
